package packet

import (
	"bytes"
	"testing"

	"github.com/tacktp/tack/internal/seqspace"
)

// FuzzUnmarshal exercises the wire decoder with arbitrary bytes: it must
// never panic, and any packet it accepts must re-encode to a decodable
// form (decode→encode→decode fixpoint).
func FuzzUnmarshal(f *testing.F) {
	// Seed with valid encodings of every packet type.
	seeds := []*Packet{
		{Type: TypeSYN, ConnID: 1, SentAt: 5},
		{Type: TypeSYNACK, ConnID: 1, IACK: IACKHandshake, Ack: &AckInfo{Window: 1 << 20}},
		{Type: TypeData, ConnID: 2, PktSeq: 9, Seq: 1500, Payload: bytes.Repeat([]byte{7}, 64), FIN: true},
		{Type: TypeTACK, ConnID: 3, Ack: &AckInfo{
			CumAck:        4096,
			AckedBlocks:   []seqspace.Range{{Lo: 1, Hi: 5}},
			UnackedBlocks: []seqspace.Range{{Lo: 5, Hi: 7}},
		}},
		{Type: TypeIACK, ConnID: 3, IACK: IACKLoss, Ack: &AckInfo{UnackedBlocks: []seqspace.Range{{Lo: 2, Hi: 3}}}},
		{Type: TypeFIN, ConnID: 4, Seq: 1 << 30},
		{Type: TypeFINACK, ConnID: 4, Ack: &AckInfo{CumAck: 1 << 30}},
	}
	for _, p := range seeds {
		f.Add(p.Marshal())
	}
	f.Add([]byte{})
	f.Add([]byte{Version})

	f.Fuzz(func(t *testing.T, raw []byte) {
		p, err := Unmarshal(raw)
		if err != nil {
			return
		}
		re := p.Marshal()
		q, err := Unmarshal(re)
		if err != nil {
			t.Fatalf("re-encode of accepted packet failed: %v (%+v)", err, p)
		}
		if q.Type != p.Type || q.PktSeq != p.PktSeq || q.Seq != p.Seq {
			t.Fatalf("decode/encode fixpoint violated:\n p=%+v\n q=%+v", p, q)
		}
	})
}
