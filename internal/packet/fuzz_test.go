package packet

import (
	"bytes"
	"testing"

	"github.com/tacktp/tack/internal/seqspace"
)

// FuzzUnmarshal exercises the wire decoder with arbitrary bytes: it must
// never panic, and any packet it accepts must re-encode to a decodable
// form (decode→encode→decode fixpoint).
func FuzzUnmarshal(f *testing.F) {
	// Seed with valid encodings of every packet type.
	seeds := []*Packet{
		{Type: TypeSYN, ConnID: 1, SentAt: 5},
		{Type: TypeSYNACK, ConnID: 1, IACK: IACKHandshake, Ack: &AckInfo{Window: 1 << 20}},
		{Type: TypeData, ConnID: 2, PktSeq: 9, Seq: 1500, Payload: bytes.Repeat([]byte{7}, 64), FIN: true},
		{Type: TypeData, ConnID: 2, PktSeq: 10, Seq: 1564, Payload: bytes.Repeat([]byte{8}, 32),
			HasStream: true, StreamID: 3, StreamOff: 4096, StreamFIN: true},
		{Type: TypeTACK, ConnID: 3, Ack: &AckInfo{
			CumAck:        1024,
			StreamWindows: []StreamWindow{{ID: 1, Limit: 1 << 16}, {ID: InitialWindowID, Limit: 1 << 15}},
		}},
		{Type: TypeTACK, ConnID: 3, Ack: &AckInfo{
			CumAck:        4096,
			AckedBlocks:   []seqspace.Range{{Lo: 1, Hi: 5}},
			UnackedBlocks: []seqspace.Range{{Lo: 5, Hi: 7}},
		}},
		{Type: TypeIACK, ConnID: 3, IACK: IACKLoss, Ack: &AckInfo{UnackedBlocks: []seqspace.Range{{Lo: 2, Hi: 3}}}},
		{Type: TypeFIN, ConnID: 4, Seq: 1 << 30},
		{Type: TypeFINACK, ConnID: 4, Ack: &AckInfo{CumAck: 1 << 30}},
		{Type: TypePathChallenge, ConnID: 5, SentAt: 7, Token: 0x1122334455667788},
		{Type: TypePathResponse, ConnID: 5, SentAt: 8, Token: 0x1122334455667788},
		{Type: TypeData, ConnID: 6, PktSeq: 11, Seq: 2048, Payload: bytes.Repeat([]byte{4}, 48),
			HasStream: true, StreamID: 2, StreamOff: 512, HasFEC: true, FECGroup: 9, FECIndex: 2},
		{Type: TypeRepair, ConnID: 6, SentAt: 9, Payload: bytes.Repeat([]byte{0xAB}, 96),
			FECGroup: 9, FECGroupLen: 4, FECRepairCount: 1, FECIndex: 0, FECScheme: 1},
	}
	for _, p := range seeds {
		f.Add(p.Marshal())
	}
	f.Add([]byte{})
	f.Add([]byte{Version})

	f.Fuzz(func(t *testing.T, raw []byte) {
		p, err := Unmarshal(raw)
		if err != nil {
			return
		}
		re := p.Marshal()
		q, err := Unmarshal(re)
		if err != nil {
			t.Fatalf("re-encode of accepted packet failed: %v (%+v)", err, p)
		}
		if q.Type != p.Type || q.PktSeq != p.PktSeq || q.Seq != p.Seq {
			t.Fatalf("decode/encode fixpoint violated:\n p=%+v\n q=%+v", p, q)
		}
	})
}

// FuzzCodecDifferential fuzzes the zero-allocation codec against the
// legacy entry points: DecodeInto (on a dirty, reused packet) must accept
// and reject exactly the same inputs as Unmarshal with semantically equal
// results, and AppendMarshal must re-encode byte-identically to Marshal.
// Truncated and garbage inputs must error on both paths without panics.
func FuzzCodecDifferential(f *testing.F) {
	for _, p := range codecCases() {
		wire := p.Marshal()
		f.Add(wire)
		// Seed truncations so the corpus explores short-input handling.
		f.Add(wire[:len(wire)/2])
	}
	f.Add([]byte{})
	f.Add([]byte{Version})

	// The reused target deliberately persists across fuzz invocations:
	// every decode must stand alone no matter what state the previous
	// (possibly failed) decode left behind.
	var reused Packet
	f.Fuzz(func(t *testing.T, raw []byte) {
		legacy, legacyErr := Unmarshal(raw)
		intoErr := DecodeInto(&reused, raw)
		if (legacyErr == nil) != (intoErr == nil) {
			t.Fatalf("accept/reject divergence: Unmarshal err=%v DecodeInto err=%v", legacyErr, intoErr)
		}
		if legacyErr != nil {
			return
		}
		if !packetsEqual(legacy, &reused) {
			t.Fatalf("decode divergence:\n legacy=%+v\n reused=%+v", legacy, &reused)
		}
		if !bytes.Equal(legacy.Marshal(), reused.AppendMarshal(nil)) {
			t.Fatalf("encode divergence for %+v", legacy)
		}
	})
}

// FuzzStreamFrame fuzzes the STREAM-frame corner of the codec with
// structured inputs: arbitrary stream ID / offset / flag / payload
// combinations must round-trip exactly (including the zero-length FIN
// frame and the FEC source-symbol tag), EncodedLen must predict the
// marshalled size, and Sane must accept every honestly-constructed frame.
func FuzzStreamFrame(f *testing.F) {
	f.Add(uint32(0), uint64(0), []byte{}, true, false, false, uint32(0), uint8(0))
	f.Add(uint32(7), uint64(1<<21), bytes.Repeat([]byte{9}, 1400), false, false, true, uint32(12), uint8(5))
	f.Add(InitialWindowID, uint64(1)<<62, []byte{1}, true, true, false, uint32(0), uint8(0))
	f.Fuzz(func(t *testing.T, sid uint32, off uint64, payload []byte, fin bool, retrans bool,
		hasFEC bool, group uint32, fecIdx uint8) {
		if off+uint64(len(payload)) < off {
			return // wrapping ranges are an encoder-contract violation
		}
		p := &Packet{
			Type: TypeData, ConnID: 1, PktSeq: 42, Seq: 9000,
			Payload: payload, HasStream: true, StreamID: sid, StreamOff: off,
			StreamFIN: fin, Retrans: retrans,
			HasFEC: hasFEC, FECGroup: group, FECIndex: fecIdx,
		}
		if !hasFEC {
			p.FECGroup, p.FECIndex = 0, 0 // not on the wire without the flag
		}
		wire := p.Marshal()
		if len(wire) != p.EncodedLen() {
			t.Fatalf("EncodedLen %d != marshalled %d", p.EncodedLen(), len(wire))
		}
		q, err := Unmarshal(wire)
		if err != nil {
			t.Fatalf("decode of honest stream frame failed: %v", err)
		}
		if !q.HasStream || q.StreamID != sid || q.StreamOff != off || q.StreamFIN != fin {
			t.Fatalf("stream fields diverged: %+v vs %+v", p, q)
		}
		if q.HasFEC != hasFEC || q.FECGroup != p.FECGroup || q.FECIndex != p.FECIndex {
			t.Fatalf("fec fields diverged: %+v vs %+v", p, q)
		}
		if !bytes.Equal(q.Payload, payload) {
			t.Fatalf("payload diverged (%d vs %d bytes)", len(q.Payload), len(payload))
		}
		if err := q.Sane(); err != nil {
			t.Fatalf("Sane rejected honest stream frame: %v", err)
		}
	})
}
