// Package debugserver is the live observability plane's HTTP surface:
// an opt-in debug listener exposing the telemetry registry in
// Prometheus text format (/metrics), the standard pprof profiles
// (/debug/pprof/), and a JSON per-connection state dump
// (/debug/tack/conns) built from the endpoint's lock-cheap published
// snapshots.
//
// The server deliberately uses its own mux (never http.DefaultServeMux)
// so importing this package cannot leak debug handlers into an
// application's public listener, and it binds only where the operator
// pointed it (Config.DebugAddr / tackd -debug-addr) — the routes expose
// internals and belong on localhost or a management network.
package debugserver

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"github.com/tacktp/tack/internal/endpoint"
	"github.com/tacktp/tack/internal/telemetry"
)

// Options wires the server to the process's observability sources.
type Options struct {
	// Registry is exported on /metrics (nil renders an empty page).
	Registry *telemetry.Registry
	// Conns supplies the per-connection snapshots for /debug/tack/conns
	// (nil renders an empty list).
	Conns func() []endpoint.ConnState
	// OnScrape, when non-nil, runs before each /metrics render — the
	// facade uses it to refresh aggregate gauges (ack overhead) from
	// the latest connection snapshots.
	OnScrape func()
}

// Server is a running debug HTTP listener.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// New binds addr and starts serving the debug routes in a background
// goroutine. Use Addr to discover the bound address (addr may carry
// port 0) and Close to stop.
func New(addr string, opts Options) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte(indexPage))
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if opts.OnScrape != nil {
			opts.OnScrape()
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		telemetry.WritePrometheus(w, opts.Registry)
	})
	mux.HandleFunc("/debug/tack/conns", func(w http.ResponseWriter, r *http.Request) {
		states := []endpoint.ConnState{}
		if opts.Conns != nil {
			states = opts.Conns()
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(states)
	})
	mux.HandleFunc("/debug/tack/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(opts.Registry.Snapshot())
	})
	// pprof must be wired by hand on a private mux; the package's init
	// only registers on http.DefaultServeMux.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s := &Server{
		ln: ln,
		srv: &http.Server{
			Handler:           mux,
			ReadHeaderTimeout: 5 * time.Second,
		},
	}
	go s.srv.Serve(ln)
	return s, nil
}

const indexPage = `tack debug endpoint
  /metrics            Prometheus text exposition of the telemetry registry
  /debug/tack/conns   JSON per-connection state snapshots
  /debug/tack/metrics JSON registry snapshot (counters/gauges/histogram digests)
  /debug/pprof/       Go runtime profiles (heap, goroutine, CPU, trace)
`

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and in-flight handlers.
func (s *Server) Close() error { return s.srv.Close() }
