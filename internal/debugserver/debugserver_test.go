package debugserver

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/tacktp/tack/internal/endpoint"
	"github.com/tacktp/tack/internal/telemetry"
	"github.com/tacktp/tack/internal/transport"
)

// transportConfig is the small-transfer template the live-endpoint test
// runs behind the debug server.
func transportConfig(reg *telemetry.Registry) transport.Config {
	return transport.Config{
		Mode: transport.ModeTACK, TransferBytes: 256 << 10, Metrics: reg,
	}
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestDebugServerRoutes(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("ep.rx_packets").Add(9)
	scrapes := 0
	srv, err := New("127.0.0.1:0", Options{
		Registry: reg,
		Conns: func() []endpoint.ConnState {
			return []endpoint.ConnState{{ConnID: 0xabcd, Role: "sender", State: "established"}}
		},
		OnScrape: func() { scrapes++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	code, body := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.Contains(body, "tack_ep_rx_packets 9") {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}
	if scrapes != 1 {
		t.Fatalf("OnScrape ran %d times, want 1", scrapes)
	}

	code, body = get(t, base+"/debug/tack/conns")
	if code != http.StatusOK {
		t.Fatalf("/debug/tack/conns status %d", code)
	}
	var states []endpoint.ConnState
	if err := json.Unmarshal([]byte(body), &states); err != nil {
		t.Fatalf("conns not JSON: %v\n%s", err, body)
	}
	if len(states) != 1 || states[0].ConnID != 0xabcd || states[0].Role != "sender" {
		t.Fatalf("conns = %+v", states)
	}

	code, body = get(t, base+"/debug/pprof/goroutine?debug=1")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/goroutine status %d body %.80q", code, body)
	}

	code, body = get(t, base+"/")
	if code != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Fatalf("index status %d body %.80q", code, body)
	}
	if code, _ := get(t, base+"/nope"); code != http.StatusNotFound {
		t.Fatalf("unknown route status %d, want 404", code)
	}
}

// TestDebugServerNilOptions ensures the routes degrade gracefully with
// nothing wired in.
func TestDebugServerNilOptions(t *testing.T) {
	srv, err := New("127.0.0.1:0", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()
	if code, body := get(t, base+"/metrics"); code != http.StatusOK || body != "" {
		t.Fatalf("/metrics status %d body %q", code, body)
	}
	code, body := get(t, base+"/debug/tack/conns")
	if code != http.StatusOK || strings.TrimSpace(body) != "[]" {
		t.Fatalf("/debug/tack/conns status %d body %q", code, body)
	}
}

// TestDebugServerAgainstLiveEndpoint wires a real endpoint transfer
// behind the server and scrapes mid-run: /metrics must parse and
// /debug/tack/conns must expose both connection halves.
func TestDebugServerAgainstLiveEndpoint(t *testing.T) {
	reg := telemetry.NewRegistry()
	tcfg := transportConfig(reg)
	srvEp, err := endpoint.Listen("127.0.0.1:0", endpoint.Config{Transport: tcfg})
	if err != nil {
		t.Fatal(err)
	}
	defer srvEp.Close()
	dbg, err := New("127.0.0.1:0", Options{Registry: reg, Conns: srvEp.StateSnapshots})
	if err != nil {
		t.Fatal(err)
	}
	defer dbg.Close()

	go func() {
		c, err := srvEp.Accept()
		if err == nil {
			c.Wait(0)
		}
	}()
	cli, err := endpoint.DialAddr(srvEp.LocalAddr().String(), tcfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := cli.Wait(0); err != nil {
		t.Fatal(err)
	}

	code, body := get(t, "http://"+dbg.Addr()+"/metrics")
	if code != http.StatusOK || !strings.Contains(body, "tack_ep_rx_packets") {
		t.Fatalf("/metrics after transfer: status %d\n%s", code, body)
	}
	// The receiver half lingers ~1 s after completion and its snapshot
	// refreshes on a 100 ms cadence: poll until the refresh shows the
	// delivered bytes (or the connection is deregistered, also fine).
	deadline := time.Now().Add(2 * time.Second)
	for {
		code, body = get(t, "http://"+dbg.Addr()+"/debug/tack/conns")
		if code != http.StatusOK {
			t.Fatalf("/debug/tack/conns status %d", code)
		}
		var states []endpoint.ConnState
		if err := json.Unmarshal([]byte(body), &states); err != nil {
			t.Fatal(err)
		}
		stale := false
		for _, s := range states {
			if s.Role == "receiver" && s.BytesDelivered == 0 {
				stale = true
			}
		}
		if !stale {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("receiver snapshot never showed delivery: %s", body)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
