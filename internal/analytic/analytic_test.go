package analytic

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/tacktp/tack/internal/sim"
)

func ms(n int64) sim.Time { return sim.Time(n) * sim.Millisecond }

func TestFreqByteCount(t *testing.T) {
	// 12 Mbit/s, L=1: 1000 packets/s.
	if got := FreqByteCount(12e6, 1); math.Abs(got-1000) > 1e-9 {
		t.Fatalf("f_b = %v, want 1000", got)
	}
	if got := FreqByteCount(12e6, 2); math.Abs(got-500) > 1e-9 {
		t.Fatalf("f_b(L=2) = %v, want 500", got)
	}
	if got := FreqByteCount(12e6, 0); got != 1000 {
		t.Fatalf("L<1 should clamp to 1: %v", got)
	}
}

func TestFreqPeriodic(t *testing.T) {
	if got := FreqPeriodic(ms(25)); math.Abs(got-40) > 1e-9 {
		t.Fatalf("f = %v, want 40", got)
	}
	if !math.IsInf(FreqPeriodic(0), 1) {
		t.Fatal("alpha=0 should be +Inf")
	}
}

func TestFreqTACKRegimes(t *testing.T) {
	// Low bw: byte-counting side wins. 1.2 Mbit/s, L=2 → 50 Hz vs β/RTT=400.
	if got := FreqTACK(1.2e6, 2, 4, ms(10)); math.Abs(got-50) > 1e-9 {
		t.Fatalf("low-bw f = %v, want 50", got)
	}
	// High bw: periodic side wins. 300 Mbit/s → f = 4/0.01 = 400 Hz.
	if got := FreqTACK(300e6, 2, 4, ms(10)); math.Abs(got-400) > 1e-9 {
		t.Fatalf("high-bw f = %v, want 400", got)
	}
}

func TestFreqDelayedPivot(t *testing.T) {
	gamma := 40 * sim.Millisecond
	pivot := 2 * float64(MSS) * 8 / gamma.Seconds() // 600 kbit/s
	below := FreqDelayed(pivot*0.9, gamma)
	if math.Abs(below-FreqPerPacket(pivot*0.9)) > 1e-9 {
		t.Fatalf("below pivot should be per-packet: %v", below)
	}
	above := FreqDelayed(pivot*2, gamma)
	if math.Abs(above-FreqByteCount(pivot*2, 2)) > 1e-9 {
		t.Fatalf("above pivot should be L=2: %v", above)
	}
}

func TestPaperFigure8Numbers(t *testing.T) {
	// Paper Figure 8(b): TACK(L=2,β=4) on 802.11ac at bw≈590 Mbit/s(UDP
	// ceiling): RTTmin=10ms → 400 Hz (periodic); TCP(L=2) ≈ 24777 Hz at
	// 594.65 Mbit/s goodput. We verify orders of magnitude.
	bw := 590e6
	ftack := FreqTACK(bw, 2, 4, ms(10))
	if ftack != 400 {
		t.Fatalf("f_tack = %v, want 400 (β/RTTmin)", ftack)
	}
	ftcp := FreqByteCount(bw, 2)
	if ftcp < 20000 || ftcp > 30000 {
		t.Fatalf("f_tcp(L=2) = %v, want ~24.6k", ftcp)
	}
	// At RTTmin=80ms the TACK frequency drops to 50 Hz: nearly three orders
	// below the legacy rate.
	if got := FreqTACK(bw, 2, 4, ms(80)); got != 50 {
		t.Fatalf("f_tack(80ms) = %v, want 50", got)
	}
	// 802.11b low-rate small-RTT corner: TACK falls back to byte counting
	// and equals TCP(L=2): paper reports 294 Hz for both at 7 Mbit/s.
	b := 7e6
	if FreqTACK(b, 2, 4, ms(10)) != FreqByteCount(b, 2) {
		t.Fatal("802.11b/10ms corner should be byte-counting-limited")
	}
}

// Property: f_tack <= f_tcp(L) and f_tack <= f_perpacket for any inputs
// (paper insight 1).
func TestQuickTACKNeverExceedsLegacy(t *testing.T) {
	f := func(bwKbps uint32, rttMsRaw uint16, lRaw, betaRaw uint8) bool {
		bw := float64(bwKbps%3000000) * 1e3
		rtt := ms(int64(rttMsRaw%400) + 1)
		l := int(lRaw%16) + 1
		beta := int(betaRaw%8) + 1
		ft := FreqTACK(bw, l, beta, rtt)
		return ft <= FreqByteCount(bw, l)+1e-9 && ft <= FreqPerPacket(bw)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: frequency reduction grows with bandwidth and with RTT
// (paper insights 2 and 3).
func TestQuickReductionMonotone(t *testing.T) {
	f := func(bw1, bw2 uint32, r1, r2 uint16) bool {
		b1 := float64(bw1%1000000)*1e3 + 1e6
		b2 := float64(bw2%1000000)*1e3 + 1e6
		if b1 > b2 {
			b1, b2 = b2, b1
		}
		t1 := ms(int64(r1%400) + 1)
		t2 := ms(int64(r2%400) + 1)
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		// Reduction monotone in bw at fixed RTT:
		if ReductionVsPerPacket(b1, 2, 4, t1) > ReductionVsPerPacket(b2, 2, 4, t1)+1e-9 {
			return false
		}
		// Monotone in RTT at fixed bw:
		return ReductionVsPerPacket(b1, 2, 4, t1) <= ReductionVsPerPacket(b1, 2, 4, t2)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPivotPoints(t *testing.T) {
	// Pivot bw for RTT=10ms, β=4, L=2: 4*2*1500*8/0.01 = 9.6 Mbit/s.
	if got := PivotBandwidth(4, 2, ms(10)); math.Abs(got-9.6e6) > 1 {
		t.Fatalf("pivot bw = %v, want 9.6e6", got)
	}
	// Pivot RTT for 100 Mbit/s: 4*2*1500*8/100e6 = 0.96 ms.
	if got := PivotRTT(4, 2, 100e6); got != sim.Time(960000) {
		t.Fatalf("pivot rtt = %v, want 0.96ms", got)
	}
	// At the pivot, the two regimes agree.
	bw := PivotBandwidth(4, 2, ms(10))
	fb := FreqByteCount(bw, 2)
	fp := float64(4) / ms(10).Seconds()
	if math.Abs(fb-fp) > 1e-6 {
		t.Fatalf("regimes disagree at pivot: %v vs %v", fb, fp)
	}
}

func TestMinSendWindowAndBuffer(t *testing.T) {
	bdp := 1e6
	// β=2: W=2·bdp, buffer=1·bdp (Appendix B.1 / Figure 16).
	if got := MinSendWindow(bdp, 2); got != 2e6 {
		t.Fatalf("Wmin(2) = %v", got)
	}
	if got := BufferRequirement(bdp, 2); got != 1e6 {
		t.Fatalf("buffer(2) = %v", got)
	}
	// β=4: buffer = bdp/3 ≈ 0.33 bdp (§7).
	if got := BufferRequirement(bdp, 4) / bdp; math.Abs(got-1.0/3) > 1e-9 {
		t.Fatalf("buffer(4)/bdp = %v, want 0.333", got)
	}
}

func TestMinSendWindowPanicsBelow2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("beta=1 should panic (stop-and-wait)")
		}
	}()
	MinSendWindow(1e6, 1)
}

func TestMaxL(t *testing.T) {
	// Appendix B.2 example: Q=4, ρ=ρ′=10% → L ≤ 400.
	if got := MaxL(4, 0.1, 0.1); math.Abs(got-400) > 1e-9 {
		t.Fatalf("MaxL = %v, want 400", got)
	}
	if !math.IsInf(MaxL(4, 0, 0.1), 1) {
		t.Fatal("loss-free MaxL should be +Inf")
	}
}

func TestRichThresholdAndDeltaQ(t *testing.T) {
	bdp := 1000.0 * MSS
	// Large-bdp: threshold Q·MSS/(ρ·bdp) with Q=1, ρ=5% → 1/(0.05·1000)=2%.
	th := RichThreshold(1, 0.05, bdp, 4, 2)
	if math.Abs(th-0.02) > 1e-9 {
		t.Fatalf("threshold = %v, want 0.02", th)
	}
	// ΔQ above threshold: ρ·ρ′·bdp/MSS − Q = 0.05*0.1*1000 − 1 = 4.
	if got := DeltaQ(1, 0.05, 0.1, bdp, 4, 2); math.Abs(got-4) > 1e-9 {
		t.Fatalf("ΔQ = %v, want 4", got)
	}
	// Below threshold: ΔQ floors at 0.
	if got := DeltaQ(1, 0.05, 0.001, bdp, 4, 2); got != 0 {
		t.Fatalf("ΔQ = %v, want 0", got)
	}
	// Small-bdp regime path.
	smallTh := RichThreshold(1, 0.5, MSS, 4, 2)
	if smallTh != 1 {
		t.Fatalf("small-bdp threshold = %v, want clamped 1", smallTh)
	}
}

func TestIACKBound(t *testing.T) {
	// ρ=1%, 120 Mbit/s → 0.01 * 10000 pkt/s = 100 Hz.
	if got := IACKLossFreqUpperBound(0.01, 120e6); math.Abs(got-100) > 1e-9 {
		t.Fatalf("IACK bound = %v, want 100", got)
	}
}

func TestPerPacketVsTackExampleFromAppendixB4(t *testing.T) {
	// Appendix B.4: bw=48 Mbit/s, RTTmin=10ms, L=1: TACK is 10% of
	// per-packet frequency.
	ratio := FreqTACK(48e6, 1, 4, ms(10)) / FreqPerPacket(48e6)
	if math.Abs(ratio-0.1) > 0.001 {
		t.Fatalf("ratio = %v, want 0.10", ratio)
	}
	// bw=200 Mbit/s, RTTmin=10ms: ~2.4%.
	ratio2 := FreqTACK(200e6, 1, 4, ms(10)) / FreqPerPacket(200e6)
	if math.Abs(ratio2-0.024) > 0.001 {
		t.Fatalf("ratio2 = %v, want 0.024", ratio2)
	}
	// RTTmin 10→80ms at 200 Mbit/s: ~0.3%.
	ratio3 := FreqTACK(200e6, 1, 4, ms(80)) / FreqPerPacket(200e6)
	if math.Abs(ratio3-0.003) > 0.0002 {
		t.Fatalf("ratio3 = %v, want 0.003", ratio3)
	}
}
