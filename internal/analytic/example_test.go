package analytic_test

import (
	"fmt"

	"github.com/tacktp/tack/internal/analytic"
	"github.com/tacktp/tack/internal/sim"
)

// ExampleFreqTACK reproduces the paper's headline frequency comparison: a
// 590 Mbit/s 802.11ac flow acked per-packet, with delayed ACKs, and with
// TACK at two latencies.
func ExampleFreqTACK() {
	bw := 590e6
	fmt.Printf("per-packet: %.0f Hz\n", analytic.FreqPerPacket(bw))
	fmt.Printf("delayed L=2: %.0f Hz\n", analytic.FreqByteCount(bw, 2))
	fmt.Printf("TACK @10ms: %.0f Hz\n", analytic.FreqTACK(bw, 2, 4, 10*sim.Millisecond))
	fmt.Printf("TACK @80ms: %.0f Hz\n", analytic.FreqTACK(bw, 2, 4, 80*sim.Millisecond))
	// Output:
	// per-packet: 49167 Hz
	// delayed L=2: 24583 Hz
	// TACK @10ms: 400 Hz
	// TACK @80ms: 50 Hz
}

// ExampleBufferRequirement shows the Appendix B buffer analysis: the ideal
// bottleneck buffer shrinks as β grows.
func ExampleBufferRequirement() {
	bdp := 1.0
	for _, beta := range []int{2, 4, 8} {
		fmt.Printf("beta=%d: %.2f bdp\n", beta, analytic.BufferRequirement(bdp, beta))
	}
	// Output:
	// beta=2: 1.00 bdp
	// beta=4: 0.33 bdp
	// beta=8: 0.14 bdp
}

// ExampleMaxL evaluates Appendix B.2's bound on the byte-counting
// parameter under symmetric 10% loss with a 4-block budget.
func ExampleMaxL() {
	fmt.Printf("L <= %.0f\n", analytic.MaxL(4, 0.1, 0.1))
	// Output:
	// L <= 400
}
