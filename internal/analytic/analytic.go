// Package analytic implements the TACK paper's closed-form models: the ACK
// frequency equations (Eq. 1–5), the rich-information threshold and ΔQ
// (Eq. 6, Appendix A), and the Appendix B bounds (β lower bound via the
// minimum send window, L upper bound, pivot points of the frequency
// surface). These power the Figure 8 / Figure 17 reproductions and validate
// the runtime implementation against theory.
package analytic

import (
	"math"

	"github.com/tacktp/tack/internal/sim"
)

// MSS is the full-sized packet assumption (bytes).
const MSS = 1500

// FreqByteCount returns f_b = bw/(L·MSS) in Hz (Eq. 1): the frequency of a
// byte-counting ACK policy at data throughput bwBps.
func FreqByteCount(bwBps float64, l int) float64 {
	if l < 1 {
		l = 1
	}
	return bwBps / 8 / float64(l*MSS)
}

// FreqPeriodic returns f = 1/α in Hz (Eq. 2).
func FreqPeriodic(alpha sim.Time) float64 {
	if alpha <= 0 {
		return math.Inf(1)
	}
	return 1 / alpha.Seconds()
}

// FreqTACK returns f_tack = min(bw/(L·MSS), β/RTTmin) in Hz (Eq. 3).
func FreqTACK(bwBps float64, l, beta int, rttMin sim.Time) float64 {
	fb := FreqByteCount(bwBps, l)
	if rttMin <= 0 {
		return fb
	}
	fp := float64(beta) / rttMin.Seconds()
	return math.Min(fb, fp)
}

// FreqPerPacket returns f_tcp = bw/MSS in Hz (Eq. 4): legacy TCP with
// TCP_QUICKACK.
func FreqPerPacket(bwBps float64) float64 { return FreqByteCount(bwBps, 1) }

// FreqDelayed returns the delayed-ACK frequency (Eq. 5): per-packet below
// 2 MSS/γ of throughput, bw/(2·MSS) above it.
func FreqDelayed(bwBps float64, gamma sim.Time) float64 {
	if gamma <= 0 {
		gamma = 40 * sim.Millisecond
	}
	pivot := 2 * float64(MSS) * 8 / gamma.Seconds()
	if bwBps < pivot {
		return FreqPerPacket(bwBps)
	}
	return FreqByteCount(bwBps, 2)
}

// PeriodicRegime reports whether a flow with the given bdp (bytes) operates
// TACK in the periodic regime (bdp ≥ β·L·MSS) rather than byte-counting.
func PeriodicRegime(bdpBytes float64, beta, l int) bool {
	return bdpBytes >= float64(beta*l*MSS)
}

// RichThreshold returns the ACK-path loss rate ρ′ above which a TACK must
// carry more than Q unacked blocks (Eq. 6/9), clamped to [0,1].
func RichThreshold(q int, rho, bdpBytes float64, beta, l int) float64 {
	if rho <= 0 {
		return 1
	}
	var th float64
	if PeriodicRegime(bdpBytes, beta, l) {
		th = float64(q) * MSS / (rho * bdpBytes)
	} else {
		th = float64(q) / (rho * float64(l))
	}
	return math.Min(th, 1)
}

// DeltaQ returns the additional unacked blocks a TACK should report above
// the rich threshold (Appendix A): ρ·ρ′·bdp/MSS − Q (large bdp) or
// ρ·ρ′·L − Q (small bdp), floored at zero.
func DeltaQ(q int, rho, rhoPrime, bdpBytes float64, beta, l int) float64 {
	var need float64
	if PeriodicRegime(bdpBytes, beta, l) {
		need = rho * rhoPrime * bdpBytes / MSS
	} else {
		need = rho * rhoPrime * float64(l)
	}
	return math.Max(0, need-float64(q))
}

// MinSendWindow returns W_min = β/(β−1)·bdp (Appendix B.3, after [50]):
// the smallest send window sustaining full utilization with β ACKs per
// RTT. β must be ≥ 2 (β = 1 degenerates to stop-and-wait; see Appendix
// B.1) or the function panics.
func MinSendWindow(bdpBytes float64, beta int) float64 {
	if beta < 2 {
		panic("analytic: MinSendWindow requires beta >= 2")
	}
	return float64(beta) / float64(beta-1) * bdpBytes
}

// BufferRequirement returns the ideal bottleneck buffer requirement
// W_min − bdp: one bdp at β=2, 0.33·bdp at the default β=4 (§7).
func BufferRequirement(bdpBytes float64, beta int) float64 {
	return MinSendWindow(bdpBytes, beta) - bdpBytes
}

// MaxL returns the upper bound on the byte-counting parameter,
// L ≤ Q/(ρ·ρ′) (Appendix B.2, Eq. 10). Infinite (math.Inf) when either
// loss rate is zero.
func MaxL(q int, rho, rhoPrime float64) float64 {
	if rho <= 0 || rhoPrime <= 0 {
		return math.Inf(1)
	}
	return float64(q) / (rho * rhoPrime)
}

// PivotBandwidth returns the throughput at which TACK switches from the
// byte-counting to the periodic regime for a given RTTmin:
// bw = β·L·MSS/RTTmin (in bit/s). Figure 17(a)'s pivot points.
func PivotBandwidth(beta, l int, rttMin sim.Time) float64 {
	if rttMin <= 0 {
		return math.Inf(1)
	}
	return float64(beta*l*MSS) * 8 / rttMin.Seconds()
}

// PivotRTT returns the RTTmin at which TACK switches regimes for a given
// throughput: RTT = β·L·MSS/bw. Figure 17(b)'s pivot points.
func PivotRTT(beta, l int, bwBps float64) sim.Time {
	if bwBps <= 0 {
		return sim.Time(math.MaxInt64)
	}
	return sim.Time(float64(beta*l*MSS) * 8 / bwBps * 1e9)
}

// ReductionVsPerPacket returns the fraction of ACKs TACK eliminates
// relative to per-packet acking at the given operating point.
func ReductionVsPerPacket(bwBps float64, l, beta int, rttMin sim.Time) float64 {
	fp := FreqPerPacket(bwBps)
	if fp <= 0 {
		return 0
	}
	return 1 - FreqTACK(bwBps, l, beta, rttMin)/fp
}

// IACKLossFreqUpperBound returns the worst-case loss-event IACK frequency
// ρ·bw/MSS in Hz (§4.4): with typical small ρ the extra return-path load is
// negligible.
func IACKLossFreqUpperBound(rho, bwBps float64) float64 {
	return rho * bwBps / 8 / MSS
}
