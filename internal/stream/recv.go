package stream

import (
	"io"
	"sort"
	"sync"
	"time"

	"github.com/tacktp/tack/internal/buffer"
	"github.com/tacktp/tack/internal/packet"
	"github.com/tacktp/tack/internal/seqspace"
	"github.com/tacktp/tack/internal/sim"
	"github.com/tacktp/tack/internal/telemetry"
)

// RecvMux demultiplexes STREAM frames into per-stream reassembly buffers.
//
// Each stream reassembles independently on a buffer.ReceiveBuffer (range
// accounting) paired with a data ring sized to the stream window, so a
// hole on one stream never blocks delivery on another — the
// head-of-line-blocking win the stream layer exists for.
//
// The transport receiver (protocol goroutine) calls OnFrame and collects
// WindowAdverts when it emits acknowledgments; the application calls
// Accept / RecvStream.Read. Consumption raises the stream's advertised
// limit; releasing at least half a stream window arms an urgent advert
// that the receiver turns into the paper's window-update IACK.
type RecvMux struct {
	mu  sync.Mutex
	cfg Config

	streams map[uint32]*RecvStream
	// finished records stream IDs that completed and were retired, so a
	// straggling retransmission cannot resurrect them as fresh streams.
	finished seqspace.RangeSet
	active   int

	acceptCh chan *RecvStream
	closedCh chan struct{}

	buffered int // bytes held across all stream rings (unconsumed)
	urgent   bool
	kick     func()
	closed   bool
	err      error
	lastNow  sim.Time

	mOpened, mClosed, mFrames, mBytes, mViolations, mLimitDrops, mUpdates *telemetry.Counter
	gActive                                                              *telemetry.Gauge

	connID uint32
	tracer *telemetry.Tracer
}

// RecvDeps are the receiver-side mux dependencies.
type RecvDeps struct {
	// ConnID labels trace events.
	ConnID uint32
	// Tracer receives stream trace events (nil-safe).
	Tracer *telemetry.Tracer
	// Metrics receives stream.* counters (nil-safe).
	Metrics *telemetry.Registry
}

// NewRecvMux builds the receive-side stream layer for one connection. cfg
// must already be validated.
func NewRecvMux(cfg Config, deps RecvDeps) *RecvMux {
	cfg = cfg.withDefaults()
	return &RecvMux{
		cfg:         cfg,
		streams:     make(map[uint32]*RecvStream),
		acceptCh:    make(chan *RecvStream, cfg.MaxStreams),
		closedCh:    make(chan struct{}),
		connID:      deps.ConnID,
		tracer:      deps.Tracer,
		mOpened:     deps.Metrics.Counter("stream.accepted"),
		mClosed:     deps.Metrics.Counter("stream.recv_closed"),
		mFrames:     deps.Metrics.Counter("stream.frames_rcvd"),
		mBytes:      deps.Metrics.Counter("stream.bytes_rcvd"),
		mViolations: deps.Metrics.Counter("stream.flow_violations"),
		mLimitDrops: deps.Metrics.Counter("stream.limit_drops"),
		mUpdates:    deps.Metrics.Counter("stream.window_updates"),
		gActive:     deps.Metrics.Gauge("stream.recv_active"),
	}
}

// SetKick installs the callback that nudges the protocol goroutine when an
// application read arms an urgent window advert. Must be cheap and
// non-blocking (see SendMux.SetKick).
func (m *RecvMux) SetKick(kick func()) {
	m.mu.Lock()
	m.kick = kick
	m.mu.Unlock()
}

// OnFrame ingests one STREAM frame (protocol goroutine). It returns the
// count of newly buffered stream bytes, or ok=false when the frame was
// refused (per-stream flow-control violation or stream-limit exhaustion).
func (m *RecvMux) OnFrame(now sim.Time, sid uint32, off uint64, payload []byte, fin bool) (accepted int, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.lastNow = now
	if m.closed {
		return 0, false
	}
	s := m.streams[sid]
	if s == nil {
		if m.finished.Contains(uint64(sid)) {
			return 0, true // stale retransmission for a completed stream
		}
		if m.active >= m.cfg.MaxStreams {
			m.mLimitDrops.Inc()
			return 0, false
		}
		s = &RecvStream{
			mux:  m,
			id:   sid,
			rb:   buffer.NewReceiveBuffer(m.cfg.RecvWindow),
			ring: make([]byte, m.cfg.RecvWindow),
		}
		s.cond = sync.NewCond(&m.mu)
		m.streams[sid] = s
		m.active++
		m.gActive.Set(float64(m.active))
		m.mOpened.Inc()
		m.tracer.StreamOpened(now, m.connID, sid, true)
		select {
		case m.acceptCh <- s:
		default:
			// Unreachable by construction (active ≤ MaxStreams ≤ cap),
			// but never block the protocol goroutine.
		}
	}
	n, overflow := s.rb.Offer(off, len(payload))
	if overflow {
		m.mViolations.Inc()
		return 0, false
	}
	// Copy the in-window overlap into the data ring. Duplicate bytes from
	// overlapping retransmissions overwrite identical content.
	w := uint64(len(s.ring))
	lo, hi := off, off+uint64(len(payload))
	if lo < s.base {
		lo = s.base
	}
	if hi > s.base+w {
		hi = s.base + w // unreachable: Offer refused overflow already
	}
	for lo < hi {
		pos := lo % w
		run := w - pos
		if run > hi-lo {
			run = hi - lo
		}
		copy(s.ring[pos:pos+run], payload[lo-off:])
		lo += run
	}
	if fin {
		s.rb.OnFIN(off + uint64(len(payload)))
	}
	m.buffered += n
	m.mFrames.Inc()
	m.mBytes.Add(int64(n))
	if s.discard {
		m.drainDiscardLocked(s)
	}
	if s.rb.Readable() > 0 || s.rb.Complete() {
		s.cond.Broadcast()
	}
	return n, true
}

// drainDiscardLocked consumes everything readable on an app-closed stream
// so its window keeps opening and the peer is not stalled.
func (m *RecvMux) drainDiscardLocked(s *RecvStream) {
	n := s.rb.Read(s.rb.Readable())
	s.base += uint64(n)
	m.buffered -= n
	m.noteConsumedLocked(s)
	if s.rb.Complete() {
		m.retireLocked(s)
	}
}

// noteConsumedLocked updates urgency after the application consumed
// stream bytes: releasing at least half a stream window arms the
// window-update IACK.
func (m *RecvMux) noteConsumedLocked(s *RecvStream) {
	limit := s.base + uint64(m.cfg.RecvWindow)
	if limit-s.lastAdvert >= uint64(m.cfg.RecvWindow)/2 {
		m.urgent = true
	}
}

// retireLocked removes a fully consumed stream.
func (m *RecvMux) retireLocked(s *RecvStream) {
	if s.retired {
		return
	}
	s.retired = true
	delete(m.streams, s.id)
	m.finished.AddValue(uint64(s.id))
	m.active--
	m.gActive.Set(float64(m.active))
	m.mClosed.Inc()
	m.tracer.StreamClosed(m.lastNow, m.connID, s.id, s.rb.Delivered())
}

// Accept returns the next peer-initiated stream, blocking up to timeout
// (timeout <= 0 blocks until the mux closes). It returns ErrClosed after
// teardown and sim-style nil+ErrClosed semantics otherwise.
func (m *RecvMux) Accept(timeout time.Duration) (*RecvStream, error) {
	var timer <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		timer = t.C
	}
	select {
	case s := <-m.acceptCh:
		return s, nil
	case <-m.closedCh:
		return nil, m.closeErr()
	case <-timer:
		return nil, ErrTimeout
	}
}

func (m *RecvMux) closeErr() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.err != nil {
		return m.err
	}
	return ErrClosed
}

// TryAccept returns an already-pending peer-initiated stream without
// blocking (nil when none is queued). Suited to single-goroutine
// simulation harnesses where Accept's blocking would deadlock the loop.
func (m *RecvMux) TryAccept() *RecvStream {
	select {
	case s := <-m.acceptCh:
		return s
	default:
		return nil
	}
}

// Close tears the mux down: readers wake with err and Accept unblocks.
func (m *RecvMux) Close(err error) {
	if err == nil {
		err = ErrClosed
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.err = err
	for _, s := range m.streams {
		if s.closedErr == nil {
			s.closedErr = err
		}
		s.cond.Broadcast()
	}
	m.mu.Unlock()
	close(m.closedCh)
}

// Buffered returns the total unconsumed bytes across all stream rings —
// the stream layer's contribution to connection-level window occupancy.
func (m *RecvMux) Buffered() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.buffered
}

// ActiveStreams returns the number of live streams.
func (m *RecvMux) ActiveStreams() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.active
}

// UrgentAdvert reports whether a half-window (or larger) release is
// waiting to be advertised — the receiver should emit a window-update
// IACK rather than wait for the next TACK boundary.
func (m *RecvMux) UrgentAdvert() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.urgent
}

// InitialWindow returns the per-stream window granted to unseen streams,
// advertised under InitialWindowID on the handshake.
func (m *RecvMux) InitialWindow() uint64 { return uint64(m.cfg.RecvWindow) }

// WindowAdverts collects up to max pending per-stream advertisements
// (streams whose limit rose since last advertised), sorted by stream ID,
// and clears the urgent flag. Streams beyond max stay dirty for the next
// acknowledgment.
func (m *RecvMux) WindowAdverts(now sim.Time, max int) []packet.StreamWindow {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.lastNow = now
	urgent := m.urgent
	// Walk streams in ID order so that when more streams are dirty than
	// max, which ones ride this acknowledgment is deterministic (the rest
	// stay dirty for the next one).
	ids := make([]uint32, 0, len(m.streams))
	for id := range m.streams {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var out []packet.StreamWindow
	for _, id := range ids {
		if len(out) >= max {
			break
		}
		s := m.streams[id]
		limit := s.base + uint64(m.cfg.RecvWindow)
		if limit > s.lastAdvert {
			out = append(out, packet.StreamWindow{ID: s.id, Limit: limit})
			s.lastAdvert = limit
			m.mUpdates.Inc()
			m.tracer.StreamWindow(now, m.connID, s.id, limit, urgent)
		}
	}
	if len(out) > 0 || m.urgent {
		m.urgent = false
	}
	return out
}

// RecvStream is the readable half of one multiplexed stream.
type RecvStream struct {
	mux *RecvMux
	id  uint32

	// rb tracks received ranges and the FIN in stream-offset space; ring
	// holds the data bytes for offsets [base, base+len(ring)).
	rb   *buffer.ReceiveBuffer
	ring []byte
	base uint64 // == rb.Delivered(): first unconsumed offset

	lastAdvert uint64
	discard    bool
	retired    bool
	closedErr  error
	cond       *sync.Cond
}

// ID returns the stream identifier.
func (s *RecvStream) ID() uint32 { return s.id }

// Read consumes in-order stream bytes, blocking until data, EOF, or an
// error. At end of stream it returns io.EOF.
func (s *RecvStream) Read(p []byte) (int, error) {
	m := s.mux
	m.mu.Lock()
	defer m.mu.Unlock()
	for {
		n, eof, err := s.readLocked(p)
		if n > 0 || eof || err != nil {
			if eof {
				return n, io.EOF
			}
			return n, err
		}
		if len(p) == 0 {
			return 0, nil
		}
		s.cond.Wait()
	}
}

// ReadAvailable consumes whatever in-order bytes are ready without
// blocking. eof reports end-of-stream (all bytes consumed through FIN).
// Suited to single-goroutine simulation harnesses.
func (s *RecvStream) ReadAvailable(p []byte) (n int, eof bool, err error) {
	m := s.mux
	m.mu.Lock()
	defer m.mu.Unlock()
	return s.readLocked(p)
}

// readLocked moves up to len(p) readable bytes out of the ring and
// updates window accounting, urgency, and retirement.
func (s *RecvStream) readLocked(p []byte) (n int, eof bool, err error) {
	m := s.mux
	if s.closedErr != nil {
		return 0, false, s.closedErr
	}
	avail := s.rb.Readable()
	if avail > len(p) {
		avail = len(p)
	}
	if avail > 0 {
		w := uint64(len(s.ring))
		lo, hi := s.base, s.base+uint64(avail)
		for lo < hi {
			pos := lo % w
			run := w - pos
			if run > hi-lo {
				run = hi - lo
			}
			copy(p[lo-s.base:], s.ring[pos:pos+run])
			lo += run
		}
		s.rb.Read(avail)
		s.base += uint64(avail)
		m.buffered -= avail
		n = avail
		m.noteConsumedLocked(s)
		needKick := m.urgent && m.kick != nil
		if s.rb.Complete() {
			m.retireLocked(s)
			eof = true
		}
		if needKick {
			m.kick()
		}
		return n, eof, nil
	}
	if s.rb.Complete() {
		m.retireLocked(s)
		return 0, true, nil
	}
	return 0, false, nil
}

// Close abandons the stream: arriving data is silently consumed (keeping
// flow control moving) until the peer's FIN retires it.
func (s *RecvStream) Close() error {
	m := s.mux
	m.mu.Lock()
	defer m.mu.Unlock()
	if s.discard || s.retired {
		return nil
	}
	s.discard = true
	s.closedErr = ErrClosed
	m.drainDiscardLocked(s)
	s.cond.Broadcast()
	return nil
}
