package stream

import (
	"bytes"
	"fmt"
	"io"
	"testing"

	"github.com/tacktp/tack/internal/packet"
	"github.com/tacktp/tack/internal/telemetry"
)

// grantAll gives the send mux a generous initial window so tests that are
// not about flow control can frame freely.
func grantAll(m *SendMux) {
	m.OnWindowAdverts(0, []packet.StreamWindow{{ID: packet.InitialWindowID, Limit: 1 << 40}})
}

// pattern fills b with a deterministic byte sequence derived from (sid,
// off) so any misrouted or misordered byte is detectable.
func pattern(sid uint32, off uint64, b []byte) {
	for i := range b {
		x := off + uint64(i)
		b[i] = byte(uint64(sid)*131 + x*7 + (x >> 8))
	}
}

func TestConfigValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("Default config invalid: %v", err)
	}
	bad := []Config{
		{RecvWindow: 0, MaxStreams: 4},
		{RecvWindow: -1, MaxStreams: 4},
		{RecvWindow: 4096, MaxStreams: 0},
		{RecvWindow: 4096, MaxStreams: -3},
		{RecvWindow: 4096, MaxStreams: 4, SendBuffer: -1},
		{RecvWindow: 4096, MaxStreams: 4, Scheduler: "fifo"},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, c)
		}
	}
}

// TestRoundRobinInterleaves opens three streams and checks the default
// scheduler serves one frame each in rotation with correct offsets and
// payload bytes.
func TestRoundRobinInterleaves(t *testing.T) {
	m := NewSendMux(Config{RecvWindow: 1 << 20, MaxStreams: 8}, SendDeps{})
	grantAll(m)
	var streams []*SendStream
	for i := 0; i < 3; i++ {
		s, err := m.Open(Options{})
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 3000)
		pattern(s.ID(), 0, buf)
		if _, err := s.Write(buf); err != nil {
			t.Fatal(err)
		}
		streams = append(streams, s)
	}
	var order []uint32
	for {
		fr, ok := m.NextFrame(0, 1000)
		if !ok {
			break
		}
		order = append(order, fr.ID)
		want := make([]byte, len(fr.Data))
		pattern(fr.ID, fr.Off, want)
		if !bytes.Equal(fr.Data, want) {
			t.Fatalf("frame sid=%d off=%d: payload mismatch", fr.ID, fr.Off)
		}
	}
	if len(order) != 9 {
		t.Fatalf("expected 9 frames, got %d (%v)", len(order), order)
	}
	for i, id := range order {
		if id != uint32(i%3) {
			t.Fatalf("not round-robin: %v", order)
		}
	}
	_ = streams
}

// TestStrictPriorityOrder checks the priority scheduler drains the
// highest-priority stream completely before touching lower ones.
func TestStrictPriorityOrder(t *testing.T) {
	m := NewSendMux(Config{RecvWindow: 1 << 20, MaxStreams: 8, Scheduler: SchedulerPriority}, SendDeps{})
	grantAll(m)
	low, _ := m.Open(Options{Priority: 1})
	high, _ := m.Open(Options{Priority: 9})
	lowData := make([]byte, 4000)
	highData := make([]byte, 4000)
	pattern(low.ID(), 0, lowData)
	pattern(high.ID(), 0, highData)
	low.Write(lowData)
	high.Write(highData)
	var order []uint32
	for {
		fr, ok := m.NextFrame(0, 1000)
		if !ok {
			break
		}
		order = append(order, fr.ID)
	}
	want := []uint32{high.ID(), high.ID(), high.ID(), high.ID(), low.ID(), low.ID(), low.ID(), low.ID()}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Fatalf("priority order = %v, want %v", order, want)
	}
}

// TestWeightedShares checks DRR delivers bytes roughly proportional to
// weights over many frames.
func TestWeightedShares(t *testing.T) {
	m := NewSendMux(Config{RecvWindow: 1 << 22, MaxStreams: 8, Scheduler: SchedulerWeighted, SendBuffer: 1 << 22}, SendDeps{})
	grantAll(m)
	weights := []int{1, 2, 4}
	sent := map[uint32]int{}
	id2w := map[uint32]int{}
	for _, w := range weights {
		s, _ := m.Open(Options{Weight: w})
		id2w[s.ID()] = w
		buf := make([]byte, 1<<20)
		pattern(s.ID(), 0, buf)
		s.Write(buf)
	}
	// Pull a fixed budget of frames, far less than total queued, so every
	// stream stays backlogged and shares reflect scheduling.
	total := 0
	for total < 300_000 {
		fr, ok := m.NextFrame(0, 1500)
		if !ok {
			break
		}
		sent[fr.ID] += len(fr.Data)
		total += len(fr.Data)
	}
	var perWeight [3]float64
	i := 0
	for id, w := range id2w {
		share := float64(sent[id]) / float64(w)
		perWeight[i] = share
		_ = w
		i++
	}
	// All weight-normalized shares should be within 25% of each other.
	min, max := perWeight[0], perWeight[0]
	for _, v := range perWeight[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if min <= 0 || max/min > 1.25 {
		t.Fatalf("weighted shares skewed: %v (sent=%v)", perWeight, sent)
	}
}

// TestFlowControlGatesFraming verifies streams cannot frame beyond the
// advertised limit and resume when the limit rises.
func TestFlowControlGatesFraming(t *testing.T) {
	m := NewSendMux(Config{RecvWindow: 1 << 20, MaxStreams: 8}, SendDeps{})
	s, _ := m.Open(Options{})
	data := make([]byte, 5000)
	pattern(s.ID(), 0, data)
	s.Write(data)
	if _, ok := m.NextFrame(0, 1500); ok {
		t.Fatal("framed data with no window advertised")
	}
	m.OnWindowAdverts(0, []packet.StreamWindow{{ID: packet.InitialWindowID, Limit: 2000}})
	got := 0
	for {
		fr, ok := m.NextFrame(0, 1500)
		if !ok {
			break
		}
		got += len(fr.Data)
	}
	if got != 2000 {
		t.Fatalf("framed %d bytes, window allows 2000", got)
	}
	// Raising the per-stream limit resumes framing. An honest receiver
	// advertises consumed+window, so it takes two rounds to reach 5000.
	if !m.OnWindowAdverts(0, []packet.StreamWindow{{ID: s.ID(), Limit: 4000}}) {
		t.Fatal("raised advert did not unblock the stream")
	}
	for {
		fr, ok := m.NextFrame(0, 1500)
		if !ok {
			break
		}
		got += len(fr.Data)
	}
	if got != 4000 {
		t.Fatalf("framed %d bytes after advert 4000, want 4000", got)
	}
	m.OnWindowAdverts(0, []packet.StreamWindow{{ID: s.ID(), Limit: 6000}})
	for {
		fr, ok := m.NextFrame(0, 1500)
		if !ok {
			break
		}
		got += len(fr.Data)
	}
	if got != 5000 {
		t.Fatalf("framed %d bytes total, want all 5000", got)
	}
}

// TestWindowAdvertValidation checks misbehaving-receiver defences: limits
// that shrink or exceed sent+initial-window are counted and clamped.
func TestWindowAdvertValidation(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := NewSendMux(Config{RecvWindow: 1 << 20, MaxStreams: 8}, SendDeps{Metrics: reg})
	m.OnWindowAdverts(0, []packet.StreamWindow{{ID: packet.InitialWindowID, Limit: 1000}})
	s, _ := m.Open(Options{})
	data := make([]byte, 500)
	s.Write(data)
	for {
		if _, ok := m.NextFrame(0, 400); !ok {
			break
		}
	}
	// Sent 500 bytes; an honest limit can never exceed 500+1000.
	m.OnWindowAdverts(0, []packet.StreamWindow{{ID: s.ID(), Limit: 1 << 30}})
	if v := reg.Counter("stream.bad_window").Value(); v != 1 {
		t.Fatalf("inflated advert not counted: bad_window=%d", v)
	}
	if s.limit != 500+1000 {
		t.Fatalf("inflated advert not clamped: limit=%d", s.limit)
	}
	// Shrinking advert: counted, ignored.
	m.OnWindowAdverts(0, []packet.StreamWindow{{ID: s.ID(), Limit: 10}})
	if v := reg.Counter("stream.bad_window").Value(); v != 2 {
		t.Fatalf("shrinking advert not counted: bad_window=%d", v)
	}
	if s.limit != 1500 {
		t.Fatalf("shrinking advert mutated limit: %d", s.limit)
	}
}

// TestSendFINPhantom verifies a closed stream emits a FIN frame occupying
// one phantom byte of connection sequence space, and that full
// acknowledgment retires the stream.
func TestSendFINPhantom(t *testing.T) {
	m := NewSendMux(Config{RecvWindow: 1 << 20, MaxStreams: 8}, SendDeps{})
	grantAll(m)
	s, _ := m.Open(Options{})
	payload := make([]byte, 100)
	pattern(s.ID(), 0, payload)
	s.Write(payload)
	s.Close()
	n, ok := m.NextFrameLen(1500)
	if !ok || n != 101 {
		t.Fatalf("NextFrameLen = %d,%v; want 101 (100 data + FIN phantom)", n, ok)
	}
	fr, _ := m.NextFrame(0, 1500)
	if !fr.FIN || len(fr.Data) != 100 || fr.WireLen() != 101 {
		t.Fatalf("unexpected FIN frame: fin=%v len=%d wire=%d", fr.FIN, len(fr.Data), fr.WireLen())
	}
	if _, ok := m.NextFrame(0, 1500); ok {
		t.Fatal("stream framed past FIN")
	}
	m.OnFrameAcked(0, s.ID(), 0, 100, true)
	if !s.Done() {
		t.Fatal("fully acked stream not done")
	}
	if m.ActiveStreams() != 0 {
		t.Fatal("retired stream still active")
	}
}

// TestEmptyStreamFIN covers open-then-close with no data: a zero-payload
// FIN frame of wire length 1.
func TestEmptyStreamFIN(t *testing.T) {
	m := NewSendMux(Config{RecvWindow: 1 << 20, MaxStreams: 8}, SendDeps{})
	grantAll(m)
	s, _ := m.Open(Options{})
	s.Close()
	fr, ok := m.NextFrame(0, 1500)
	if !ok || !fr.FIN || len(fr.Data) != 0 || fr.WireLen() != 1 {
		t.Fatalf("empty-stream FIN frame wrong: ok=%v %+v", ok, fr)
	}
	m.OnFrameAcked(0, s.ID(), 0, 0, true)
	if !s.Done() {
		t.Fatal("empty stream not done after FIN ack")
	}
}

// TestFrameDataRetransmit verifies retained bytes can be re-materialized
// for retransmission until acknowledged, and selective acks trim
// retention.
func TestFrameDataRetransmit(t *testing.T) {
	m := NewSendMux(Config{RecvWindow: 1 << 20, MaxStreams: 8}, SendDeps{})
	grantAll(m)
	s, _ := m.Open(Options{})
	data := make([]byte, 3000)
	pattern(s.ID(), 0, data)
	s.Write(data)
	for {
		if _, ok := m.NextFrame(0, 1000); !ok {
			break
		}
	}
	re := m.FrameData(s.ID(), 1000, 1000)
	want := make([]byte, 1000)
	pattern(s.ID(), 1000, want)
	if !bytes.Equal(re, want) {
		t.Fatal("FrameData returned wrong bytes")
	}
	// Ack the middle selectively, then the head: retention trims to 2000.
	m.OnFrameAcked(0, s.ID(), 1000, 1000, false)
	m.OnFrameAcked(0, s.ID(), 0, 1000, false)
	if got := s.BufferedBytes(); got != 1000 {
		t.Fatalf("retained %d bytes after acking 2000 of 3000", got)
	}
	if re := m.FrameData(s.ID(), 2000, 1000); re == nil {
		t.Fatal("unacked tail no longer retrievable")
	}
}

// TestRecvNoHolB: loss on one stream must not block another stream's
// delivery — the core head-of-line-blocking property.
func TestRecvNoHolB(t *testing.T) {
	m := NewRecvMux(Config{RecvWindow: 1 << 16, MaxStreams: 8}, RecvDeps{})
	mkframe := func(sid uint32, off uint64, n int, fin bool) []byte {
		b := make([]byte, n)
		pattern(sid, off, b)
		if _, ok := m.OnFrame(0, sid, off, b, fin); !ok {
			t.Fatalf("frame sid=%d off=%d refused", sid, off)
		}
		return b
	}
	// Stream 0 arrives with a hole at [0,1000); stream 1 arrives complete.
	mkframe(0, 1000, 1000, true)
	mkframe(1, 0, 500, false)
	mkframe(1, 500, 500, true)

	s1 := m.TryAccept()
	s0 := m.TryAccept()
	if s1 == nil || s0 == nil {
		t.Fatal("expected two accepted streams")
	}
	if s1.ID() != 0 {
		s0, s1 = s1, s0 // accept order follows first frame arrival
	}
	// s1 here is stream 0 (holed); s0 is stream 1 (complete).
	var sink [4096]byte
	n, eof, err := s0.ReadAvailable(sink[:])
	if err != nil || !eof || n != 1000 {
		t.Fatalf("complete stream blocked behind other stream's hole: n=%d eof=%v err=%v", n, eof, err)
	}
	want := make([]byte, 1000)
	pattern(1, 0, want)
	if !bytes.Equal(sink[:1000], want) {
		t.Fatal("stream 1 bytes corrupted")
	}
	if n, _, _ := s1.ReadAvailable(sink[:]); n != 0 {
		t.Fatalf("holed stream delivered %d bytes before repair", n)
	}
	// Repair the hole; stream 0 becomes fully readable.
	mkframe(0, 0, 1000, false)
	n, eof, err = s1.ReadAvailable(sink[:])
	if err != nil || !eof || n != 2000 {
		t.Fatalf("repaired stream: n=%d eof=%v err=%v", n, eof, err)
	}
	if m.ActiveStreams() != 0 {
		t.Fatal("consumed streams not retired")
	}
}

// TestRecvOverlappingRetransmits re-offers ranges that partially overlap
// already-delivered data and checks bytes, accounting, and window
// integrity.
func TestRecvOverlappingRetransmits(t *testing.T) {
	m := NewRecvMux(Config{RecvWindow: 4096, MaxStreams: 2}, RecvDeps{})
	frame := func(off uint64, n int, fin bool) {
		b := make([]byte, n)
		pattern(3, off, b)
		if _, ok := m.OnFrame(0, 3, off, b, fin); !ok {
			t.Fatalf("frame off=%d refused", off)
		}
	}
	frame(0, 1000, false)
	s := m.TryAccept()
	var sink [8192]byte
	if n, _, _ := s.ReadAvailable(sink[:]); n != 1000 {
		t.Fatalf("read %d", n)
	}
	// Retransmission overlapping consumed data [500,1500): only the new
	// half may be buffered, and delivered bytes must not re-deliver.
	if acc, ok := m.OnFrame(0, 3, 500, mkPattern(3, 500, 1000), false); !ok || acc != 500 {
		t.Fatalf("overlap accept = %d,%v want 500,true", acc, ok)
	}
	// Duplicate of buffered data: zero new bytes.
	if acc, ok := m.OnFrame(0, 3, 1000, mkPattern(3, 1000, 500), false); !ok || acc != 0 {
		t.Fatalf("duplicate accept = %d,%v want 0,true", acc, ok)
	}
	frame(1500, 500, true)
	n, eof, err := s.ReadAvailable(sink[:])
	if n != 1000 || !eof || err != nil {
		t.Fatalf("tail read n=%d eof=%v err=%v", n, eof, err)
	}
	want := mkPattern(3, 1000, 1000)
	if !bytes.Equal(sink[:1000], want) {
		t.Fatal("overlapping retransmits corrupted the stream")
	}
	if m.Buffered() != 0 {
		t.Fatalf("Buffered=%d after full consumption", m.Buffered())
	}
}

func mkPattern(sid uint32, off uint64, n int) []byte {
	b := make([]byte, n)
	pattern(sid, off, b)
	return b
}

// TestRecvFlowViolation: a frame beyond the advertised stream window is
// refused and counted.
func TestRecvFlowViolation(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := NewRecvMux(Config{RecvWindow: 1024, MaxStreams: 2}, RecvDeps{Metrics: reg})
	if _, ok := m.OnFrame(0, 0, 900, make([]byte, 500), false); ok {
		t.Fatal("window-violating frame accepted")
	}
	if v := reg.Counter("stream.flow_violations").Value(); v != 1 {
		t.Fatalf("flow_violations=%d", v)
	}
	// In-window data still flows.
	if _, ok := m.OnFrame(0, 0, 0, make([]byte, 500), false); !ok {
		t.Fatal("in-window frame refused")
	}
}

// TestRecvStreamLimit: frames for streams beyond MaxStreams are dropped
// and counted, and retiring a stream frees the slot.
func TestRecvStreamLimit(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := NewRecvMux(Config{RecvWindow: 1024, MaxStreams: 2}, RecvDeps{Metrics: reg})
	m.OnFrame(0, 0, 0, []byte{1}, true)
	m.OnFrame(0, 1, 0, []byte{1}, true)
	if _, ok := m.OnFrame(0, 2, 0, []byte{1}, true); ok {
		t.Fatal("third stream accepted past MaxStreams=2")
	}
	if v := reg.Counter("stream.limit_drops").Value(); v != 1 {
		t.Fatalf("limit_drops=%d", v)
	}
	s := m.TryAccept()
	var b [8]byte
	if _, eof, _ := s.ReadAvailable(b[:]); !eof {
		t.Fatal("expected eof")
	}
	// Slot freed: stream 2 now fits.
	if _, ok := m.OnFrame(0, 2, 0, []byte{1}, true); !ok {
		t.Fatal("stream rejected after slot freed")
	}
	// A retransmission for the retired stream must not resurrect it.
	if _, ok := m.OnFrame(0, s.ID(), 0, []byte{1}, true); !ok {
		t.Fatal("stale retransmission refused (should be silently dropped)")
	}
	if m.ActiveStreams() != 2 {
		t.Fatalf("ActiveStreams=%d", m.ActiveStreams())
	}
}

// TestWindowAdvertsRiseWithConsumption: consuming bytes raises the
// stream's advertised limit; consuming half the window arms the urgent
// (window-IACK) flag.
func TestWindowAdvertsRiseWithConsumption(t *testing.T) {
	m := NewRecvMux(Config{RecvWindow: 1000, MaxStreams: 4}, RecvDeps{})
	m.OnFrame(0, 0, 0, mkPattern(0, 0, 1000), false)
	s := m.TryAccept()
	// Initial advert state: limit base 0+1000; nothing consumed yet so
	// first WindowAdverts carries limit 1000.
	ws := m.WindowAdverts(0, 16)
	if len(ws) != 1 || ws[0].Limit != 1000 {
		t.Fatalf("initial adverts %v", ws)
	}
	if m.UrgentAdvert() {
		t.Fatal("urgent before any consumption")
	}
	var sink [600]byte
	s.Read(sink[:]) // consume 600 ≥ window/2 → urgent
	if !m.UrgentAdvert() {
		t.Fatal("half-window release did not arm urgent advert")
	}
	ws = m.WindowAdverts(0, 16)
	if len(ws) != 1 || ws[0].Limit != 1600 {
		t.Fatalf("post-consumption adverts %v", ws)
	}
	if m.UrgentAdvert() {
		t.Fatal("urgent not cleared by advert flush")
	}
}

// TestAcceptBlockingAndClose verifies Accept wakes on close and blocked
// readers error out.
func TestAcceptBlockingAndClose(t *testing.T) {
	m := NewRecvMux(Config{RecvWindow: 1024, MaxStreams: 2}, RecvDeps{})
	m.OnFrame(0, 9, 0, []byte{1, 2}, false)
	s, err := m.Accept(0)
	if err != nil || s.ID() != 9 {
		t.Fatalf("Accept: %v %v", s, err)
	}
	done := make(chan error, 1)
	go func() {
		var b [8]byte
		b2, _, _ := s.ReadAvailable(b[:]) // drain the 2 ready bytes
		_ = b2
		_, err := s.Read(b[:]) // now block
		done <- err
	}()
	m.Close(nil)
	if err := <-done; err == nil || err == io.EOF {
		t.Fatalf("blocked reader returned %v, want closed error", err)
	}
	if _, err := m.Accept(0); err == nil {
		t.Fatal("Accept after close succeeded")
	}
}

// TestWriteBlocksOnSendBuffer verifies Write applies backpressure at the
// per-stream cap and resumes as acknowledgments trim retention.
func TestWriteBlocksOnSendBuffer(t *testing.T) {
	m := NewSendMux(Config{RecvWindow: 1 << 20, MaxStreams: 2, SendBuffer: 1000}, SendDeps{})
	grantAll(m)
	s, _ := m.Open(Options{})
	if _, err := s.Write(make([]byte, 1000)); err != nil {
		t.Fatal(err)
	}
	wrote := make(chan struct{})
	go func() {
		s.Write(make([]byte, 500))
		close(wrote)
	}()
	select {
	case <-wrote:
		t.Fatal("Write past SendBuffer did not block")
	default:
	}
	// Frame and ack the first 600 bytes: retention drops, writer resumes.
	for sent := 0; sent < 600; {
		fr, ok := m.NextFrame(0, 300)
		if !ok {
			t.Fatal("nothing to frame")
		}
		sent += len(fr.Data)
	}
	m.OnFrameAcked(0, s.ID(), 0, 600, false)
	<-wrote
}
