// Package stream implements QUIC-style stream multiplexing over one TACK
// connection: many independent ordered byte streams share a single
// connection-level sequence space, congestion controller, and
// acknowledgment machinery.
//
// The wire unit is the STREAM frame (packet.Packet with HasStream set): a
// contiguous run of one stream's bytes tagged with the stream ID, the
// stream-relative offset, and an optional FIN. Frames still occupy the
// connection-level byte space (PKT.SEQ and SEQ are untouched), so the
// paper's TACK/IACK feedback, receiver-based loss detection, and
// delivery-rate sampling all operate unchanged below this layer. A frame
// carrying StreamFIN occupies len(payload)+1 bytes of connection sequence
// space — the trailing phantom byte carries the end-of-stream marker
// through the retransmission machinery exactly like TCP's FIN bit, so even
// a zero-length FIN frame has a unique, loss-recoverable position in the
// connection stream.
//
// Sending is scheduler-driven: streams with frameable data queue into a
// pluggable Scheduler (round-robin by default; strict-priority and
// weighted deficit-round-robin variants are provided) and the transport
// sender pulls one frame per packet through the pacer.
//
// Flow control is two-level. The connection window (AWND) still bounds
// total unconsumed bytes; in addition every stream has its own window,
// advertised as an absolute byte limit (packet.StreamWindow) that rises as
// the application consumes. Per-stream window exhaustion at the receiver
// is relieved by the paper's window-update IACK (§4.4): releasing half a
// stream window triggers an immediate IACKWindow instead of waiting for
// the next TACK boundary. Advertised limits are validated against bytes
// actually sent — a receiver can never have consumed more than that, so a
// limit beyond sent+initial-window is a misbehaving-receiver signal
// (counted, clamped, never obeyed).
package stream

import (
	"errors"
	"fmt"

	"github.com/tacktp/tack/internal/fec"
)

// Frame is one schedulable unit handed to the transport sender: a run of
// stream bytes plus the FIN marker. Data is freshly allocated per frame
// (the in-process simulator delivers packets by reference, so frame
// payloads must stay immutable after handoff).
type Frame struct {
	// ID is the stream identifier.
	ID uint32
	// Off is the stream-relative byte offset of Data.
	Off uint64
	// Data is the frame payload (owned by the frame; never aliased).
	Data []byte
	// FIN marks the end of the stream immediately after Data.
	FIN bool
	// FEC carries the owning stream's FEC options so the transport sender
	// can fold the frame into a repair group without a mux round trip; the
	// zero value means the stream is not FEC-protected.
	FEC fec.Options
}

// WireLen returns the connection-sequence-space footprint of the frame:
// payload bytes plus one phantom byte when FIN is set.
func (f *Frame) WireLen() int {
	n := len(f.Data)
	if f.FIN {
		n++
	}
	return n
}

// Config parameterizes the stream layer of a connection. The zero value is
// invalid (stream multiplexing is opt-in); start from Default().
type Config struct {
	// RecvWindow is the per-stream receive window in bytes: the receiver
	// buffers at most this much unconsumed data per stream, and the
	// advertised per-stream limit trails application consumption by this
	// amount. Must be positive.
	RecvWindow int
	// MaxStreams bounds the number of concurrently live streams in each
	// direction. Frames for streams beyond the limit are dropped (and
	// counted); local Open calls fail. Must be positive.
	MaxStreams int
	// SendBuffer is the per-stream retained-data cap in bytes: Write
	// blocks once this many unacknowledged bytes are buffered. Zero
	// selects DefaultSendBuffer.
	SendBuffer int
	// Scheduler selects the send scheduler: SchedulerRoundRobin (default
	// when empty), SchedulerPriority, or SchedulerWeighted.
	Scheduler string
}

// Scheduler names accepted by Config.Scheduler.
const (
	// SchedulerRoundRobin services ready streams one frame at a time in
	// rotation — the default, fair in frames.
	SchedulerRoundRobin = "rr"
	// SchedulerPriority always services the ready stream with the highest
	// Options.Priority (ties broken by lowest stream ID). Starvation of
	// low priorities is intentional.
	SchedulerPriority = "priority"
	// SchedulerWeighted is deficit-round-robin: bandwidth divides between
	// ready streams proportionally to Options.Weight.
	SchedulerWeighted = "weighted"
)

// Default stream-layer parameters.
const (
	// DefaultRecvWindow is the default per-stream receive window.
	DefaultRecvWindow = 256 << 10
	// DefaultMaxStreams is the default concurrent-stream cap.
	DefaultMaxStreams = 256
	// DefaultSendBuffer is the default per-stream send-buffer cap.
	DefaultSendBuffer = 256 << 10
)

// Default returns the stream configuration the facade recommends:
// round-robin scheduling, 256 KiB windows, 256 streams.
func Default() Config {
	return Config{
		RecvWindow: DefaultRecvWindow,
		MaxStreams: DefaultMaxStreams,
		SendBuffer: DefaultSendBuffer,
		Scheduler:  SchedulerRoundRobin,
	}
}

// Validate rejects nonsensical stream configurations: zero or negative
// windows and stream-count limits are errors (not "use a default") because
// a silently patched-up limit hides real misconfiguration.
func (c Config) Validate() error {
	if c.RecvWindow <= 0 {
		return fmt.Errorf("stream: RecvWindow must be positive, got %d", c.RecvWindow)
	}
	if c.MaxStreams <= 0 {
		return fmt.Errorf("stream: MaxStreams must be positive, got %d", c.MaxStreams)
	}
	if c.SendBuffer < 0 {
		return fmt.Errorf("stream: SendBuffer must be non-negative, got %d", c.SendBuffer)
	}
	switch c.Scheduler {
	case "", SchedulerRoundRobin, SchedulerPriority, SchedulerWeighted:
	default:
		return fmt.Errorf("stream: unknown scheduler %q", c.Scheduler)
	}
	return nil
}

// withDefaults fills optional fields.
func (c Config) withDefaults() Config {
	if c.SendBuffer == 0 {
		c.SendBuffer = DefaultSendBuffer
	}
	if c.Scheduler == "" {
		c.Scheduler = SchedulerRoundRobin
	}
	return c
}

// Options configures one stream at Open time.
type Options struct {
	// Priority orders streams under SchedulerPriority (higher first).
	Priority int
	// Weight sets the stream's bandwidth share under SchedulerWeighted
	// (zero means 1).
	Weight int
	// FEC opts the stream into forward-error-correction: its frames are
	// coded into repair groups so burst loss recovers without a
	// retransmission round trip (latency-critical streams). The zero value
	// disables FEC for the stream.
	FEC fec.Options
}

// Validate bounds-checks the per-stream options (today that is the FEC
// sub-surface; scheduling knobs accept any value).
func (o Options) Validate() error {
	return o.FEC.Validate()
}

// Stream-layer errors.
var (
	// ErrStreamsDisabled is returned by stream operations on a connection
	// configured without a stream layer.
	ErrStreamsDisabled = errors.New("stream: multiplexing not enabled on this connection")
	// ErrTooManyStreams is returned by Open when MaxStreams streams are
	// already live.
	ErrTooManyStreams = errors.New("stream: too many concurrent streams")
	// ErrClosed is returned by operations on a closed stream or mux.
	ErrClosed = errors.New("stream: closed")
	// ErrTimeout is returned by Accept when its timeout elapses.
	ErrTimeout = errors.New("stream: accept timeout")
)
