package stream

import "container/heap"

// Scheduler orders ready send streams. Implementations are not
// goroutine-safe: every method is called under the SendMux lock.
//
// The contract: Push enters a stream that became frameable (the mux
// guarantees no double-push); Peek returns the stream to service next
// without removing it; Consumed reports that n connection-space bytes were
// framed from s and whether s is still frameable, letting the scheduler
// rotate, retire, or retain it. A stream that stops being frameable
// between Push and Peek is removed by the mux via Consumed(s, 0, false).
type Scheduler interface {
	// Name returns the scheduler's Config.Scheduler identifier.
	Name() string
	// Push enters a ready stream.
	Push(s *SendStream)
	// Peek returns the next stream to service, or nil when none is ready.
	Peek() *SendStream
	// Consumed accounts n framed bytes from s; still reports whether s
	// remains frameable and should stay scheduled.
	Consumed(s *SendStream, n int, still bool)
}

// newScheduler builds the scheduler named by a validated Config.
func newScheduler(name string) Scheduler {
	switch name {
	case SchedulerPriority:
		return &prioSched{}
	case SchedulerWeighted:
		return newDRRSched()
	default:
		return &rrSched{}
	}
}

// rrSched is a FIFO rotation: one frame per ready stream per round.
type rrSched struct {
	q []*SendStream
}

// Name identifies the scheduler.
func (r *rrSched) Name() string { return SchedulerRoundRobin }

// Push appends the stream to the rotation.
func (r *rrSched) Push(s *SendStream) { r.q = append(r.q, s) }

// Peek returns the stream at the head of the rotation.
func (r *rrSched) Peek() *SendStream {
	if len(r.q) == 0 {
		return nil
	}
	return r.q[0]
}

// Consumed rotates the serviced stream to the back (or drops it when it
// has nothing left to frame).
func (r *rrSched) Consumed(s *SendStream, n int, still bool) {
	if len(r.q) == 0 || r.q[0] != s {
		return
	}
	r.q = r.q[1:]
	if still {
		r.q = append(r.q, s)
	}
}

// prioSched is strict priority: the highest-priority ready stream is
// serviced until it has nothing to frame; ties break toward the lowest
// stream ID for determinism.
type prioSched struct {
	h prioHeap
}

// Name identifies the scheduler.
func (p *prioSched) Name() string { return SchedulerPriority }

// Push enters the stream into the priority heap.
func (p *prioSched) Push(s *SendStream) { heap.Push(&p.h, s) }

// Peek returns the highest-priority ready stream.
func (p *prioSched) Peek() *SendStream {
	if len(p.h) == 0 {
		return nil
	}
	return p.h[0]
}

// Consumed keeps the stream at the top while it remains frameable (strict
// priority never rotates), removing it otherwise.
func (p *prioSched) Consumed(s *SendStream, n int, still bool) {
	if still || len(p.h) == 0 || p.h[0] != s {
		return
	}
	heap.Pop(&p.h)
}

// prioHeap orders by descending priority, ascending stream ID.
type prioHeap []*SendStream

func (h prioHeap) Len() int { return len(h) }
func (h prioHeap) Less(i, j int) bool {
	if h[i].prio != h[j].prio {
		return h[i].prio > h[j].prio
	}
	return h[i].id < h[j].id
}
func (h prioHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *prioHeap) Push(x any)        { *h = append(*h, x.(*SendStream)) }
func (h *prioHeap) Pop() any {
	old := *h
	n := len(old)
	s := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return s
}

// drrQuantum is the deficit-round-robin base quantum per unit of weight:
// roughly one full frame, so a weight-1 stream sends about one packet per
// round.
const drrQuantum = 1500

// drrSched is deficit round robin (Shreedhar & Varghese): each ready
// stream holds a byte deficit replenished by weight×quantum per round; the
// head stream is serviced while its deficit lasts, then rotates.
type drrSched struct {
	q []*SendStream
}

func newDRRSched() *drrSched { return &drrSched{} }

// Name identifies the scheduler.
func (d *drrSched) Name() string { return SchedulerWeighted }

// Push enters the stream with a fresh quantum.
func (d *drrSched) Push(s *SendStream) {
	s.deficit = d.quantumFor(s)
	d.q = append(d.q, s)
}

func (d *drrSched) quantumFor(s *SendStream) int {
	w := s.weight
	if w <= 0 {
		w = 1
	}
	return w * drrQuantum
}

// Peek returns the head of the active list.
func (d *drrSched) Peek() *SendStream {
	if len(d.q) == 0 {
		return nil
	}
	return d.q[0]
}

// Consumed charges the framed bytes against the head stream's deficit and
// rotates it (with a replenished quantum) once the deficit is spent.
func (d *drrSched) Consumed(s *SendStream, n int, still bool) {
	if len(d.q) == 0 || d.q[0] != s {
		return
	}
	s.deficit -= n
	if !still {
		d.q = d.q[1:]
		return
	}
	if s.deficit <= 0 {
		d.q = append(d.q[1:], s)
		s.deficit += d.quantumFor(s)
	}
}
