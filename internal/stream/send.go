package stream

import (
	"sort"
	"sync"

	"github.com/tacktp/tack/internal/fec"
	"github.com/tacktp/tack/internal/packet"
	"github.com/tacktp/tack/internal/seqspace"
	"github.com/tacktp/tack/internal/sim"
	"github.com/tacktp/tack/internal/telemetry"
)

// SendMux multiplexes application streams onto one connection's sender.
//
// Ownership is split across two goroutine domains: the application calls
// Open / SendStream.Write / SendStream.Close, while the transport sender
// (protocol goroutine) calls NextFrame / OnFrameAcked / OnWindowAdverts.
// One mutex serializes both; application writes that make a stream
// frameable wake the protocol goroutine through the kick callback, which
// must be safe to invoke while the mutex is held (the endpoint's kick is a
// non-blocking shard nudge).
type SendMux struct {
	mu   sync.Mutex
	cfg  Config
	deps SendDeps

	sched   Scheduler
	streams map[uint32]*SendStream
	nextID  uint32
	active  int

	// initialLimit is the peer's InitialWindowID advertisement: the
	// per-stream window granted to streams it has not seen yet, and the
	// bound used to validate later advertisements (an honest receiver's
	// limit never exceeds bytes-sent + initialLimit).
	initialLimit uint64
	haveInitial  bool

	kick    func()
	closed  bool
	err     error
	lastNow sim.Time

	mOpened, mClosed, mFrames, mBytes, mBadWindow *telemetry.Counter
	gActive                                       *telemetry.Gauge
}

// SendDeps are the sender-side mux dependencies.
type SendDeps struct {
	// ConnID labels trace events.
	ConnID uint32
	// Tracer receives stream trace events (nil-safe).
	Tracer *telemetry.Tracer
	// Metrics receives stream.* counters (nil-safe).
	Metrics *telemetry.Registry
}

// NewSendMux builds the send-side stream layer for one connection. cfg
// must already be validated.
func NewSendMux(cfg Config, deps SendDeps) *SendMux {
	cfg = cfg.withDefaults()
	return &SendMux{
		cfg:        cfg,
		deps:       deps,
		sched:      newScheduler(cfg.Scheduler),
		streams:    make(map[uint32]*SendStream),
		mOpened:    deps.Metrics.Counter("stream.opened"),
		mClosed:    deps.Metrics.Counter("stream.send_closed"),
		mFrames:    deps.Metrics.Counter("stream.frames_sent"),
		mBytes:     deps.Metrics.Counter("stream.bytes_sent"),
		mBadWindow: deps.Metrics.Counter("stream.bad_window"),
		gActive:    deps.Metrics.Gauge("stream.send_active"),
	}
}

// SetKick installs the callback that wakes the protocol goroutine after an
// application write or close makes a stream frameable. It must be cheap,
// non-blocking, and callable while mux-internal locks are held.
func (m *SendMux) SetKick(kick func()) {
	m.mu.Lock()
	m.kick = kick
	m.mu.Unlock()
}

// SchedulerName returns the active scheduler's identifier.
func (m *SendMux) SchedulerName() string { return m.sched.Name() }

// Open creates a new outgoing stream.
func (m *SendMux) Open(opts Options) (*SendStream, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, m.closeErrLocked()
	}
	if m.active >= m.cfg.MaxStreams {
		return nil, ErrTooManyStreams
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	s := &SendStream{
		mux:    m,
		id:     m.nextID,
		prio:   opts.Priority,
		weight: opts.Weight,
		fec:    opts.FEC,
	}
	s.cond = sync.NewCond(&m.mu)
	if m.haveInitial {
		s.limit = m.initialLimit
	}
	m.nextID++
	m.streams[s.id] = s
	m.active++
	m.gActive.Set(float64(m.active))
	m.mOpened.Inc()
	m.deps.Tracer.StreamOpened(m.lastNow, m.deps.ConnID, s.id, false)
	return s, nil
}

func (m *SendMux) closeErrLocked() error {
	if m.err != nil {
		return m.err
	}
	return ErrClosed
}

// Close tears the mux down: every stream errors out and blocked writers
// wake. Frames already handed to the sender are unaffected.
func (m *SendMux) Close(err error) {
	if err == nil {
		err = ErrClosed
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return
	}
	m.closed = true
	m.err = err
	for _, s := range m.streams {
		if s.closedErr == nil {
			s.closedErr = err
		}
		s.cond.Broadcast()
	}
}

// ActiveStreams returns the number of live (not fully acknowledged)
// streams.
func (m *SendMux) ActiveStreams() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.active
}

// frameable reports whether s has anything to put in a frame right now:
// window-permitted unsent data, or an unsent FIN at the tail.
func (m *SendMux) frameable(s *SendStream) bool {
	if s.closedErr != nil || s.done {
		return false
	}
	if s.next < s.writeEnd() && s.next < s.limit {
		return true
	}
	return s.fin && !s.finFramed && s.next == s.writeEnd()
}

// scheduleLocked queues s if it is frameable and not already queued,
// reporting whether the protocol goroutine needs a wakeup.
func (m *SendMux) scheduleLocked(s *SendStream) bool {
	if s.queued || !m.frameable(s) {
		return false
	}
	s.queued = true
	m.sched.Push(s)
	return true
}

// peekLocked returns the next serviceable stream, retiring stale queue
// heads (streams that stopped being frameable since they were pushed).
func (m *SendMux) peekLocked() *SendStream {
	for {
		s := m.sched.Peek()
		if s == nil {
			return nil
		}
		if m.frameable(s) {
			return s
		}
		s.queued = false
		m.sched.Consumed(s, 0, false)
	}
}

// frameLenLocked returns the data-byte length of the next frame from s,
// capped at max.
func (m *SendMux) frameLenLocked(s *SendStream, max int) int {
	n := uint64(max)
	if avail := s.writeEnd() - s.next; avail < n {
		n = avail
	}
	if credit := s.limit - s.next; s.limit > s.next && credit < n {
		n = credit
	} else if s.limit <= s.next {
		n = 0
	}
	return int(n)
}

// NextFrameLen reports the connection-sequence-space size of the frame the
// scheduler would emit next (including the FIN phantom byte), with ok
// false when nothing is frameable. The transport sender gates this length
// against the congestion window and pacer before committing via
// NextFrame.
func (m *SendMux) NextFrameLen(max int) (n int, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.peekLocked()
	if s == nil {
		return 0, false
	}
	n = m.frameLenLocked(s, max)
	if s.fin && !s.finFramed && s.next+uint64(n) == s.writeEnd() {
		n++ // FIN phantom byte
	}
	return n, true
}

// NextFrame commits the scheduler's next frame: up to max data bytes of
// the head stream (plus FIN when the frame reaches a closed stream's
// tail). The returned frame owns its payload copy.
func (m *SendMux) NextFrame(now sim.Time, max int) (Frame, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.lastNow = now
	s := m.peekLocked()
	if s == nil {
		return Frame{}, false
	}
	n := m.frameLenLocked(s, max)
	fr := Frame{ID: s.id, Off: s.next, FEC: s.fec}
	if n > 0 {
		fr.Data = append(make([]byte, 0, n), s.data[s.next-s.dataOff:][:n]...)
		s.next += uint64(n)
	}
	if s.fin && !s.finFramed && s.next == s.writeEnd() {
		fr.FIN = true
		s.finFramed = true
	}
	still := m.frameable(s)
	if !still {
		s.queued = false
	}
	m.sched.Consumed(s, fr.WireLen(), still)
	m.mFrames.Inc()
	m.mBytes.Add(int64(n))
	return fr, true
}

// FrameData re-materializes stream bytes for a retransmission: a fresh
// copy of [off, off+n) of stream sid. The segment being retransmitted is
// unacknowledged, so the bytes are still retained.
func (m *SendMux) FrameData(sid uint32, off uint64, n int) []byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.streams[sid]
	if s == nil || n <= 0 {
		return nil
	}
	if off < s.dataOff || off+uint64(n) > s.writeEnd() {
		return nil // defensive: the range is no longer retained
	}
	return append(make([]byte, 0, n), s.data[off-s.dataOff:][:n]...)
}

// OnFrameAcked releases n acknowledged stream-data bytes of [off, off+n)
// on stream sid (fin reports the frame carried the stream FIN). Fully
// acknowledged closed streams are retired; blocked writers wake as
// retained data is trimmed.
func (m *SendMux) OnFrameAcked(now sim.Time, sid uint32, off uint64, n int, fin bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.lastNow = now
	s := m.streams[sid]
	if s == nil {
		return
	}
	if n > 0 {
		s.acked.Add(off, off+uint64(n))
	}
	if fin {
		s.finAcked = true
	}
	base := s.acked.ContiguousFrom(s.ackedBase)
	if base > s.ackedBase {
		s.ackedBase = base
		s.acked.RemoveBelow(base)
		if drop := int(s.ackedBase - s.dataOff); drop > 0 {
			kept := copy(s.data, s.data[drop:])
			s.data = s.data[:kept]
			s.dataOff = s.ackedBase
		}
		s.cond.Broadcast()
	}
	if s.fin && s.finAcked && s.ackedBase == s.writeEnd() {
		s.done = true
		delete(m.streams, sid)
		m.active--
		m.gActive.Set(float64(m.active))
		m.mClosed.Inc()
		m.deps.Tracer.StreamClosed(now, m.deps.ConnID, sid, s.writeEnd())
		s.cond.Broadcast()
	}
}

// OnWindowAdverts applies the peer's per-stream flow-control
// advertisements, validating each against bytes actually sent: the
// receiver cannot have consumed more than we transmitted, so an honest
// limit never exceeds sent + initial-window. Violations (and shrinking
// limits) are counted, clamped, and otherwise ignored. It returns whether
// any stream gained sendable credit.
func (m *SendMux) OnWindowAdverts(now sim.Time, ws []packet.StreamWindow) (unblocked bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.lastNow = now
	for _, w := range ws {
		if w.ID == packet.InitialWindowID {
			if !m.haveInitial || w.Limit > m.initialLimit {
				m.initialLimit = w.Limit
				m.haveInitial = true
				// The initial grant covers streams the receiver has not
				// seen yet — raise every stream still below it, in ID
				// order so the scheduler queue (and thus the whole
				// simulation) stays deterministic.
				ids := make([]uint32, 0, len(m.streams))
				for id := range m.streams {
					ids = append(ids, id)
				}
				sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
				for _, id := range ids {
					s := m.streams[id]
					if s.limit < m.initialLimit {
						s.limit = m.initialLimit
						if m.scheduleLocked(s) {
							unblocked = true
						}
					}
				}
			}
			continue
		}
		s := m.streams[w.ID]
		if s == nil {
			continue // completed or never-opened stream: stale advert
		}
		if w.Limit < s.limit {
			m.mBadWindow.Inc()
			continue
		}
		limit := w.Limit
		if m.haveInitial {
			if bound := s.next + m.initialLimit; limit > bound {
				m.mBadWindow.Inc()
				limit = bound
			}
		}
		if limit > s.limit {
			s.limit = limit
			if m.scheduleLocked(s) {
				unblocked = true
			}
		}
	}
	return unblocked
}

// SendStream is the writable half of one multiplexed stream. Write and
// Close follow io.WriteCloser; writes block when the per-stream send
// buffer is full and error once the stream or connection is closed.
type SendStream struct {
	mux    *SendMux
	id     uint32
	prio   int
	weight int
	fec    fec.Options

	// deficit is owned by the weighted scheduler.
	deficit int
	queued  bool

	// data retains bytes [dataOff, dataOff+len(data)) — everything
	// written but not yet contiguously acknowledged.
	data    []byte
	dataOff uint64
	// next is the first never-framed offset.
	next uint64
	// limit is the peer-advertised absolute flow-control limit.
	limit uint64

	acked     seqspace.RangeSet
	ackedBase uint64

	fin       bool
	finFramed bool
	finAcked  bool
	done      bool

	closedErr error
	cond      *sync.Cond
}

// ID returns the stream identifier.
func (s *SendStream) ID() uint32 { return s.id }

// writeEnd is the offset one past the last written byte.
func (s *SendStream) writeEnd() uint64 { return s.dataOff + uint64(len(s.data)) }

// BufferedBytes returns the retained (written, not yet contiguously
// acknowledged) byte count.
func (s *SendStream) BufferedBytes() int {
	s.mux.mu.Lock()
	defer s.mux.mu.Unlock()
	return len(s.data)
}

// Write appends b to the stream, blocking while the per-stream send
// buffer is full. It returns the bytes consumed and the first error
// encountered (ErrClosed after Close, or the connection error after
// teardown).
func (s *SendStream) Write(b []byte) (int, error) {
	m := s.mux
	m.mu.Lock()
	defer m.mu.Unlock()
	total := 0
	for len(b) > 0 {
		if s.closedErr != nil {
			return total, s.closedErr
		}
		if s.fin {
			return total, ErrClosed
		}
		room := m.cfg.SendBuffer - len(s.data)
		if room <= 0 {
			s.cond.Wait()
			continue
		}
		n := len(b)
		if n > room {
			n = room
		}
		s.data = append(s.data, b[:n]...)
		b = b[n:]
		total += n
		if m.scheduleLocked(s) && m.kick != nil {
			m.kick()
		}
	}
	return total, nil
}

// Close marks the end of the stream: a FIN frame is scheduled after the
// written bytes. Close does not wait for acknowledgment.
func (s *SendStream) Close() error {
	m := s.mux
	m.mu.Lock()
	defer m.mu.Unlock()
	if s.closedErr != nil {
		return s.closedErr
	}
	if s.fin {
		return nil
	}
	s.fin = true
	if m.scheduleLocked(s) && m.kick != nil {
		m.kick()
	}
	return nil
}

// Done reports whether the stream is fully delivered: FIN sent and every
// byte (and the FIN) acknowledged.
func (s *SendStream) Done() bool {
	s.mux.mu.Lock()
	defer s.mux.mu.Unlock()
	return s.done
}
