package netem

import (
	"math/rand"

	"github.com/tacktp/tack/internal/sim"
)

// GilbertElliott parameterizes the classic two-state burst-loss model: the
// channel alternates between a "good" and a "bad" state with per-packet
// transition probabilities, and each state has its own loss probability.
// It captures the bursty frame-error behaviour of a fading wireless channel
// far better than independent Bernoulli loss (the paper's testbed sees
// exactly this regime when stations move away from the AP, §6.5).
//
// The model is enabled iff PEnterBad > 0. A zero LossBad means "drop
// everything while bad" (the common Gilbert configuration); set LossGood to
// add residual loss in the good state.
type GilbertElliott struct {
	// PEnterBad is the per-packet probability of a good→bad transition.
	PEnterBad float64
	// PExitBad is the per-packet probability of a bad→good transition
	// (expected burst length = 1/PExitBad packets).
	PExitBad float64
	// LossGood is the drop probability while in the good state.
	LossGood float64
	// LossBad is the drop probability while in the bad state; zero selects
	// the default of 1.0 (every packet in a burst is lost).
	LossBad float64
}

func (g GilbertElliott) enabled() bool { return g.PEnterBad > 0 }

func (g GilbertElliott) lossBad() float64 {
	if g.LossBad == 0 {
		return 1
	}
	return g.LossBad
}

// MeanLoss returns the configured steady-state loss rate of the model: the
// stationary bad-state occupancy π_bad = PEnterBad/(PEnterBad+PExitBad) of
// the two-state Markov chain, weighted by the per-state loss probabilities.
// Tests and the FEC adaptive controller assert against this ground truth
// instead of re-deriving it. A disabled model (PEnterBad == 0) draws no
// loss at all and returns 0; PExitBad == 0 means the chain is absorbed in
// the bad state.
func (g GilbertElliott) MeanLoss() float64 {
	if !g.enabled() {
		return 0
	}
	if g.PExitBad <= 0 {
		return g.lossBad()
	}
	piBad := g.PEnterBad / (g.PEnterBad + g.PExitBad)
	return piBad*g.lossBad() + (1-piBad)*g.LossGood
}

// Impairments bundles the adversarial per-packet models that can be layered
// on top of a path's basic rate/delay/queue behaviour: independent loss,
// Gilbert–Elliott burst loss, duplication, bit corruption and delay jitter.
// The zero value applies no impairments.
//
// Both the in-sim Link and the real-socket UDPProxy consume an Impairments
// through the same Impairer decision model, so a scenario tuned in
// simulation translates directly to a live chaos run.
type Impairments struct {
	// LossRate is an independent Bernoulli drop probability per packet,
	// applied on top of the Gilbert–Elliott model.
	LossRate float64
	// DuplicateRate is the probability that a surviving packet is delivered
	// twice (duplicate ACK/data injection, e.g. from link-layer retransmit
	// races).
	DuplicateRate float64
	// CorruptRate is the probability that a packet is bit-corrupted in
	// flight. The sim Link treats a corrupted packet as dropped (the frame
	// check sequence would reject it); the UDPProxy forwards the corrupted
	// bytes so the receiver's header validation is exercised.
	CorruptRate float64
	// ReorderRate is the probability that a packet is held back and
	// delivered ReorderDelay later than its peers, forcing out-of-order
	// arrival (fine-grained multi-path load balancing, paper §7).
	ReorderRate float64
	// ReorderDelay is the hold-back applied to reordered packets (default
	// 2 ms when ReorderRate is set).
	ReorderDelay sim.Time
	// JitterMax adds a uniform extra delay in [0, JitterMax) per packet,
	// independent of the reordering model. Combined with multi-packet
	// flights this produces natural reordering.
	JitterMax sim.Time
	// GE is the Gilbert–Elliott burst-loss model.
	GE GilbertElliott
}

// Active reports whether any impairment model is switched on.
func (im Impairments) Active() bool {
	return im.LossRate > 0 || im.DuplicateRate > 0 || im.CorruptRate > 0 ||
		im.ReorderRate > 0 || im.JitterMax > 0 || im.GE.enabled()
}

func (im Impairments) reorderDelay() sim.Time {
	if im.ReorderDelay > 0 {
		return im.ReorderDelay
	}
	return 2 * sim.Millisecond
}

// Verdict is the per-packet decision produced by an Impairer.
type Verdict struct {
	// Drop marks the packet lost (Bernoulli or Gilbert–Elliott).
	Drop bool
	// Duplicate marks the packet for double delivery.
	Duplicate bool
	// Corrupt marks the packet for bit corruption.
	Corrupt bool
	// Reorder marks the packet for a hold-back of the configured
	// ReorderDelay.
	Reorder bool
	// Jitter is the extra delay to apply on top of any reorder hold-back.
	Jitter sim.Time
}

// Delay returns the total extra delay the verdict imposes: the reorder
// hold-back (if any) plus jitter.
func (v Verdict) Delay(imp Impairments) sim.Time {
	d := v.Jitter
	if v.Reorder {
		d += imp.reorderDelay()
	}
	return d
}

// Impairer draws per-packet impairment verdicts from a seeded RNG. Given
// the same Impairments, seed and call sequence it produces the identical
// verdict sequence, which is what makes `tackbench chaos -seed` rows
// reproducible.
//
// The draw order per packet is fixed: Gilbert–Elliott state transition and
// state-loss draw (if enabled), then Bernoulli loss, duplication,
// corruption, reordering and jitter. Models that are disabled consume no
// randomness,
// and every enabled model draws on every packet — even packets already
// marked dropped — so one verdict never perturbs the stream seen by later
// packets.
//
// An Impairer is not safe for concurrent use; give each direction its own.
type Impairer struct {
	imp Impairments
	rng *rand.Rand
	bad bool
}

// NewImpairer builds an Impairer drawing from rng.
func NewImpairer(imp Impairments, rng *rand.Rand) *Impairer {
	return &Impairer{imp: imp, rng: rng}
}

// InBurst reports whether the Gilbert–Elliott channel is currently in the
// bad state.
func (im *Impairer) InBurst() bool { return im.bad }

// Next draws the verdict for the next packet.
func (im *Impairer) Next() Verdict {
	var v Verdict
	if g := im.imp.GE; g.enabled() {
		if im.bad {
			if im.rng.Float64() < g.PExitBad {
				im.bad = false
			}
		} else if im.rng.Float64() < g.PEnterBad {
			im.bad = true
		}
		p := g.LossGood
		if im.bad {
			p = g.lossBad()
		}
		if p > 0 && im.rng.Float64() < p {
			v.Drop = true
		}
	}
	if im.imp.LossRate > 0 && im.rng.Float64() < im.imp.LossRate {
		v.Drop = true
	}
	if im.imp.DuplicateRate > 0 && im.rng.Float64() < im.imp.DuplicateRate {
		v.Duplicate = true
	}
	if im.imp.CorruptRate > 0 && im.rng.Float64() < im.imp.CorruptRate {
		v.Corrupt = true
	}
	if im.imp.ReorderRate > 0 && im.rng.Float64() < im.imp.ReorderRate {
		v.Reorder = true
	}
	if im.imp.JitterMax > 0 {
		v.Jitter = sim.Time(im.rng.Int63n(int64(im.imp.JitterMax)))
	}
	return v
}

// CorruptBytes flips one to three randomly chosen bits of b in place,
// emulating in-flight bit errors that slip past (or stand in for) the
// link-layer FCS. It is a no-op on an empty slice.
func CorruptBytes(b []byte, rng *rand.Rand) {
	if len(b) == 0 {
		return
	}
	flips := 1 + rng.Intn(3)
	for i := 0; i < flips; i++ {
		bit := rng.Intn(len(b) * 8)
		b[bit/8] ^= 1 << (bit % 8)
	}
}
