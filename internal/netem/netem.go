// Package netem emulates adversarial network paths, in two flavours that
// share one impairment model:
//
//   - Link/Pipe: in-sim unidirectional/duplex paths driven by a sim.Loop —
//     serialization rate, propagation delay, a bounded drop-tail queue,
//     Bernoulli loss, and the Impairments models (Gilbert–Elliott burst
//     loss, duplication, bit corruption, jitter, coarse reordering).
//   - UDPProxy: a real-socket UDP relay that applies the same Impairments
//     to live datagrams between two endpoints, plus a Rebind hook that
//     emulates a NAT timeout / Wi-Fi roam by changing the proxy's
//     server-facing source address mid-flow.
//
// It stands in for the hardware network emulator (Spirent Attero) the TACK
// paper uses to impose WAN latency and impairments between the wireless
// router and the server (paper §6.1, §6.5): bandwidth, RTT, data-path loss
// ρ and ACK-path loss ρ′ are exactly the knobs exposed here.
//
// Threading and ownership rules: a Link is confined to its sim.Loop
// goroutine — Send, the stats fields and the Deliver callback all run
// there, and the link retains no reference to payloads beyond delivery. A
// UDPProxy owns two internal relay goroutines; its stats are atomics,
// readable from any goroutine, and every forwarded datagram is copied into
// a fresh buffer before any delayed or duplicated transmission, so callers
// never share buffers with the proxy. Impairment verdicts come from a
// per-direction seeded Impairer, making the drop/duplicate/corrupt/jitter
// sequence reproducible for a given seed regardless of timing.
package netem

import (
	"math/rand"

	"github.com/tacktp/tack/internal/sim"
)

// Deliver is the downstream hand-off invoked for every object that survives
// the link.
type Deliver func(payload any, size int)

// Config describes one direction of a link.
type Config struct {
	// RateBps is the serialization rate in bits/s; zero means infinite
	// (no serialization delay, no queueing).
	RateBps float64
	// Delay is the one-way propagation delay.
	Delay sim.Time
	// QueueBytes bounds the drop-tail queue; zero selects a default of one
	// bandwidth-delay product (minimum 64 KiB).
	QueueBytes int
	// LossRate is an independent drop probability per packet.
	LossRate float64
	// ReorderRate is the probability that a packet is held back and
	// delivered ReorderDelay later, modelling fine-grained multi-path load
	// balancing (paper §7 "handling reordering"). Zero disables it.
	ReorderRate float64
	// ReorderDelay is the extra delay applied to reordered packets
	// (default 2 ms when ReorderRate is set).
	ReorderDelay sim.Time
	// Impair layers the adversarial models (burst loss, duplication,
	// corruption, jitter) on top of the base behaviour; the zero value
	// changes nothing. A corrupted packet is counted and dropped — on a
	// real link the frame check sequence would reject it before delivery.
	Impair Impairments
}

// DefaultQueueBytes returns the queue bound in force for the config.
func (c Config) DefaultQueueBytes() int {
	if c.QueueBytes > 0 {
		return c.QueueBytes
	}
	bdp := int(c.RateBps / 8 * c.Delay.Seconds())
	if bdp < 64*1024 {
		bdp = 64 * 1024
	}
	return bdp
}

// Link is one unidirectional emulated path.
type Link struct {
	loop *sim.Loop
	cfg  Config
	out  Deliver
	rng  *rand.Rand
	imp  *Impairer

	queueBytes int
	queueLimit int
	// busyUntil is when the serializer frees up.
	busyUntil sim.Time

	// Stats.
	Sent       int
	Dropped    int // loss-model drops (Bernoulli and Gilbert–Elliott)
	Corrupted  int // corruption-model drops (failed FCS)
	Duplicated int // extra copies injected by the duplication model
	Overflows  int // queue-full drops
	Reordered  int // packets delayed by the reordering model
	Delivered  int
	SentBytes  int64
}

// NewLink builds a link delivering surviving packets to out.
func NewLink(loop *sim.Loop, cfg Config, out Deliver) *Link {
	l := &Link{
		loop:       loop,
		cfg:        cfg,
		out:        out,
		rng:        loop.Rand(),
		queueLimit: cfg.DefaultQueueBytes(),
	}
	if cfg.Impair.Active() {
		l.imp = NewImpairer(cfg.Impair, l.rng)
	}
	return l
}

// Config returns the link configuration.
func (l *Link) Config() Config { return l.cfg }

// SetLossRate adjusts the loss model on the fly (used by experiments that
// vary ρ mid-run).
func (l *Link) SetLossRate(p float64) { l.cfg.LossRate = p }

// QueueBytes returns the bytes currently queued awaiting serialization.
func (l *Link) QueueBytes() int { return l.queueBytes }

// Send offers a packet of the given size to the link.
func (l *Link) Send(payload any, size int) {
	l.Sent++
	if l.cfg.LossRate > 0 && l.rng.Float64() < l.cfg.LossRate {
		l.Dropped++
		return
	}
	extra := sim.Time(0)
	if l.cfg.ReorderRate > 0 && l.rng.Float64() < l.cfg.ReorderRate {
		extra = l.cfg.ReorderDelay
		if extra <= 0 {
			extra = 2 * sim.Millisecond
		}
		l.Reordered++
	}
	copies := 1
	if l.imp != nil {
		v := l.imp.Next()
		switch {
		case v.Corrupt:
			// A corrupted frame fails the link-layer FCS: count and drop.
			l.Corrupted++
			return
		case v.Drop:
			l.Dropped++
			return
		}
		extra += v.Delay(l.cfg.Impair)
		if v.Reorder {
			l.Reordered++
		}
		if v.Duplicate {
			copies = 2
			l.Duplicated++
		}
	}
	for i := 0; i < copies; i++ {
		l.transmit(payload, size, extra)
	}
}

// transmit runs one copy of a surviving packet through the queue/serializer
// and schedules its delivery.
func (l *Link) transmit(payload any, size int, extra sim.Time) {
	if l.cfg.RateBps <= 0 {
		// Infinite-rate link: pure delay line.
		l.SentBytes += int64(size)
		l.loop.After(l.cfg.Delay+extra, func() {
			l.Delivered++
			l.out(payload, size)
		})
		return
	}
	if l.queueBytes+size > l.queueLimit {
		l.Overflows++
		return
	}
	now := l.loop.Now()
	l.queueBytes += size
	l.SentBytes += int64(size)
	ser := sim.Time(float64(size*8) / l.cfg.RateBps * 1e9)
	start := l.busyUntil
	if start < now {
		start = now
	}
	l.busyUntil = start + ser
	done := l.busyUntil
	l.loop.At(done, func() {
		l.queueBytes -= size
		l.loop.After(l.cfg.Delay+extra, func() {
			l.Delivered++
			l.out(payload, size)
		})
	})
}

// Pipe is a bidirectional link pair with independent per-direction configs.
type Pipe struct {
	AtoB *Link
	BtoA *Link
}

// NewPipe builds a duplex link; outA receives traffic sent by B, outB
// receives traffic sent by A.
func NewPipe(loop *sim.Loop, aToB, bToA Config, outB, outA Deliver) *Pipe {
	return &Pipe{
		AtoB: NewLink(loop, aToB, outB),
		BtoA: NewLink(loop, bToA, outA),
	}
}

// Symmetric returns a duplex config pair with the same rate/delay both ways
// but distinct loss rates for the data and ACK directions (ρ, ρ′).
func Symmetric(rateBps float64, owd sim.Time, queueBytes int, dataLoss, ackLoss float64) (fwd, rev Config) {
	fwd = Config{RateBps: rateBps, Delay: owd, QueueBytes: queueBytes, LossRate: dataLoss}
	rev = Config{RateBps: rateBps, Delay: owd, QueueBytes: queueBytes, LossRate: ackLoss}
	return fwd, rev
}
