package netem

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ProxyConfig configures a UDPProxy.
type ProxyConfig struct {
	// Target is the server address ("host:port") relayed-to datagrams are
	// forwarded to.
	Target string
	// ToServer impairs the client→server direction.
	ToServer Impairments
	// ToClient impairs the server→client direction.
	ToClient Impairments
	// Delay is a base one-way delay added in each direction (on top of any
	// per-packet reorder hold-back or jitter).
	Delay time.Duration
	// Seed seeds the per-direction impairment RNGs (the two directions use
	// Seed and Seed+1). Zero selects seed 1 so runs are reproducible by
	// default.
	Seed int64
}

// ProxyDirStats counts per-direction proxy decisions. All fields are
// cumulative datagram counts.
type ProxyDirStats struct {
	// Received datagrams read from the socket.
	Received uint64
	// Forwarded datagrams written onward (duplicates counted separately).
	Forwarded uint64
	// Dropped by the Bernoulli or Gilbert–Elliott loss models.
	Dropped uint64
	// Duplicated extra copies injected.
	Duplicated uint64
	// Corrupted datagrams that had bits flipped before forwarding.
	Corrupted uint64
	// Reordered datagrams held back by the reordering model.
	Reordered uint64
}

// UDPProxy is a real-socket UDP relay that sits between a client and a
// server endpoint and applies Impairments to live datagrams in both
// directions. Unlike the in-sim Link, corrupted datagrams are forwarded
// with their bits flipped, exercising the receiver's decode and sanity
// validation exactly as radio interference above the FCS would.
//
// Rebind closes and re-opens the server-facing socket mid-flow, changing
// the source address the server observes for all subsequent datagrams —
// the same thing a NAT mapping timeout or a Wi-Fi→cellular roam does to a
// connection. A server with path migration enabled challenges the new
// address (PATH_CHALLENGE through the proxy, answered by the client) and
// adopts it once validated (ep.migration.completed); with migration
// disabled it rejects the "migrated" traffic instead (counted by its
// ep.migration_rejected metric) and the connection starves out.
//
// The proxy relays a single client (the most recent source address seen on
// the client-facing socket); that is sufficient for endpoint tests, where
// one client Endpoint multiplexes any number of connections over one
// socket.
type UDPProxy struct {
	cfg    ProxyConfig
	client *net.UDPConn // client-facing, fixed for the proxy's lifetime
	target *net.UDPAddr

	mu         sync.Mutex
	server     *net.UDPConn // server-facing; replaced by Rebind
	clientAddr *net.UDPAddr // most recent client source address
	closed     bool
	impUp      *Impairer
	impDown    *Impairer
	rngUp      *rand.Rand
	rngDown    *rand.Rand

	up, down ProxyDirStats // guarded by mu
	rebinds  atomic.Uint64

	wg sync.WaitGroup
}

// NewUDPProxy starts a proxy relaying between a fresh loopback socket
// (Addr) and cfg.Target.
func NewUDPProxy(cfg ProxyConfig) (*UDPProxy, error) {
	target, err := net.ResolveUDPAddr("udp", cfg.Target)
	if err != nil {
		return nil, err
	}
	client, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, err
	}
	server, err := net.DialUDP("udp", nil, target)
	if err != nil {
		client.Close()
		return nil, err
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	p := &UDPProxy{
		cfg:     cfg,
		client:  client,
		target:  target,
		server:  server,
		rngUp:   rand.New(rand.NewSource(seed)),
		rngDown: rand.New(rand.NewSource(seed + 1)),
	}
	p.impUp = NewImpairer(cfg.ToServer, p.rngUp)
	p.impDown = NewImpairer(cfg.ToClient, p.rngDown)
	p.wg.Add(2)
	go p.clientLoop()
	go p.serverLoop(server)
	return p, nil
}

// Addr returns the client-facing address; clients dial this instead of the
// real server.
func (p *UDPProxy) Addr() *net.UDPAddr { return p.client.LocalAddr().(*net.UDPAddr) }

// Stats returns a snapshot of both directions' counters.
func (p *UDPProxy) Stats() (toServer, toClient ProxyDirStats) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.up, p.down
}

// Rebinds returns how many times Rebind has succeeded.
func (p *UDPProxy) Rebinds() uint64 { return p.rebinds.Load() }

// Rebind swaps the server-facing socket for a new one, changing the source
// address the server sees mid-flow (NAT timeout / Wi-Fi roam emulation).
// Datagrams already scheduled on the old socket are silently lost, like
// packets in flight through a dying NAT mapping.
func (p *UDPProxy) Rebind() error {
	next, err := net.DialUDP("udp", nil, p.target)
	if err != nil {
		return err
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		next.Close()
		return errors.New("netem: proxy closed")
	}
	old := p.server
	p.server = next
	p.mu.Unlock()
	old.Close()
	p.rebinds.Add(1)
	p.wg.Add(1)
	go p.serverLoop(next)
	return nil
}

// Close shuts both sockets down and waits for the relay goroutines to
// exit. Impaired datagrams still pending delayed delivery are discarded.
func (p *UDPProxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	server := p.server
	p.mu.Unlock()
	p.client.Close()
	server.Close()
	p.wg.Wait()
	return nil
}

// clientLoop relays client→server, learning the client's source address.
func (p *UDPProxy) clientLoop() {
	defer p.wg.Done()
	buf := make([]byte, 64<<10)
	for {
		n, from, err := p.client.ReadFromUDP(buf)
		if err != nil {
			return
		}
		p.mu.Lock()
		if p.clientAddr == nil || !from.IP.Equal(p.clientAddr.IP) || from.Port != p.clientAddr.Port {
			addr := *from
			p.clientAddr = &addr
		}
		out := p.server
		send := p.impair(buf[:n], p.impUp, p.rngUp, p.cfg.ToServer, &p.up)
		p.mu.Unlock()
		for _, s := range send {
			p.transmit(s.buf, s.delay, func(b []byte) { out.Write(b) })
		}
	}
}

// serverLoop relays server→client for one server-facing socket; Rebind
// starts a fresh loop for its replacement socket.
func (p *UDPProxy) serverLoop(conn *net.UDPConn) {
	defer p.wg.Done()
	buf := make([]byte, 64<<10)
	for {
		n, err := conn.Read(buf)
		if err != nil {
			return
		}
		p.mu.Lock()
		dst := p.clientAddr
		send := p.impair(buf[:n], p.impDown, p.rngDown, p.cfg.ToClient, &p.down)
		p.mu.Unlock()
		if dst == nil {
			continue
		}
		for _, s := range send {
			p.transmit(s.buf, s.delay, func(b []byte) { p.client.WriteToUDP(b, dst) })
		}
	}
}

// scheduledSend is one (possibly duplicated) copy awaiting transmission.
type scheduledSend struct {
	buf   []byte
	delay time.Duration
}

// impair draws the verdict for one datagram and returns the copies to
// transmit (empty when dropped). Caller holds p.mu.
func (p *UDPProxy) impair(datagram []byte, im *Impairer, rng *rand.Rand, imp Impairments, st *ProxyDirStats) []scheduledSend {
	st.Received++
	v := im.Next()
	if v.Drop {
		st.Dropped++
		return nil
	}
	// Copy before any mutation or delayed write: the read buffer is reused
	// immediately by the relay loop.
	buf := append([]byte(nil), datagram...)
	if v.Corrupt {
		st.Corrupted++
		CorruptBytes(buf, rng)
	}
	if v.Reorder {
		st.Reordered++
	}
	delay := p.cfg.Delay + time.Duration(v.Delay(imp))
	st.Forwarded++
	send := []scheduledSend{{buf: buf, delay: delay}}
	if v.Duplicate {
		st.Duplicated++
		dup := append([]byte(nil), buf...)
		send = append(send, scheduledSend{buf: dup, delay: delay})
	}
	return send
}

// transmit writes the datagram now or after its scheduled delay. Write
// errors (e.g. a socket closed by Rebind or Close) are deliberately
// swallowed: to the protocol under test they are indistinguishable from
// loss.
func (p *UDPProxy) transmit(buf []byte, delay time.Duration, write func([]byte)) {
	if delay <= 0 {
		write(buf)
		return
	}
	time.AfterFunc(delay, func() { write(buf) })
}
