package netem

import (
	"fmt"
	"math/rand"
	"net"
	"testing"
	"time"

	"github.com/tacktp/tack/internal/sim"
)

func chaosImpairments() Impairments {
	return Impairments{
		LossRate:      0.05,
		DuplicateRate: 0.04,
		CorruptRate:   0.03,
		ReorderRate:   0.05,
		JitterMax:     3 * sim.Millisecond,
		GE:            GilbertElliott{PEnterBad: 0.02, PExitBad: 0.3, LossBad: 0.8},
	}
}

// Same seed ⇒ the Impairer emits the identical verdict sequence. This is
// the property that makes `tackbench chaos -seed` rows reproducible.
func TestImpairerDeterministicPerSeed(t *testing.T) {
	imp := chaosImpairments()
	draw := func(seed int64) []Verdict {
		im := NewImpairer(imp, rand.New(rand.NewSource(seed)))
		vs := make([]Verdict, 5000)
		for i := range vs {
			vs[i] = im.Next()
		}
		return vs
	}
	a, b := draw(42), draw(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("verdict %d diverged under identical seed: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := draw(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical 5000-verdict sequences")
	}
}

// Two identically-seeded links fed the same send schedule must deliver the
// same packets at the same times with the same stats — reordering,
// duplication and corruption included.
func TestLinkImpairmentSequenceDeterministic(t *testing.T) {
	run := func() (trace []string, stats Link) {
		loop := sim.NewLoop(7)
		cfg := Config{
			RateBps:     8e6,
			Delay:       5 * sim.Millisecond,
			ReorderRate: 0.05,
			Impair:      chaosImpairments(),
		}
		var link *Link
		link = NewLink(loop, cfg, func(payload any, size int) {
			trace = append(trace, fmt.Sprintf("%d@%d", payload.(int), loop.Now()))
		})
		for i := 0; i < 2000; i++ {
			id := i
			loop.At(sim.Time(i)*100*sim.Microsecond, func() { link.Send(id, 1200) })
		}
		loop.RunUntil(10 * sim.Second)
		return trace, *link
	}
	t1, s1 := run()
	t2, s2 := run()
	if len(t1) != len(t2) {
		t.Fatalf("delivery count diverged: %d vs %d", len(t1), len(t2))
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("delivery %d diverged: %s vs %s", i, t1[i], t2[i])
		}
	}
	for name, pair := range map[string][2]int{
		"dropped":    {s1.Dropped, s2.Dropped},
		"corrupted":  {s1.Corrupted, s2.Corrupted},
		"duplicated": {s1.Duplicated, s2.Duplicated},
		"reordered":  {s1.Reordered, s2.Reordered},
		"delivered":  {s1.Delivered, s2.Delivered},
	} {
		if pair[0] != pair[1] {
			t.Errorf("%s diverged: %d vs %d", name, pair[0], pair[1])
		}
		if pair[0] == 0 {
			t.Errorf("%s never fired — impairment model not exercised", name)
		}
	}
}

// The Gilbert–Elliott channel must lose packets in bursts at roughly its
// stationary rate, unlike independent Bernoulli loss.
func TestGilbertElliottBurstLoss(t *testing.T) {
	const n = 50000
	ge := GilbertElliott{PEnterBad: 0.01, PExitBad: 0.25} // LossBad defaults to 1
	im := NewImpairer(Impairments{GE: ge}, rand.New(rand.NewSource(3)))
	drops, run, maxRun := 0, 0, 0
	for i := 0; i < n; i++ {
		if im.Next().Drop {
			drops++
			run++
			if run > maxRun {
				maxRun = run
			}
		} else {
			run = 0
		}
	}
	// The empirical rate must track the configured steady state (≈ 3.85%
	// here) that MeanLoss reports — the ground truth the FEC controller
	// and benches assert against.
	rate := float64(drops) / n
	mean := ge.MeanLoss()
	if rate < mean*0.6 || rate > mean*1.4 {
		t.Errorf("GE loss rate %.4f not within ±40%% of MeanLoss %.4f", rate, mean)
	}
	// Mean burst length is 1/PExitBad = 4; a 50k-packet run should easily
	// contain a burst of 5+ — independent loss at this rate essentially
	// never would.
	if maxRun < 5 {
		t.Errorf("longest loss burst %d < 5: losses are not bursty", maxRun)
	}
}

// Accounting identity on an infinite-rate link: every surviving copy is
// delivered, so Delivered = Sent − Dropped − Corrupted + Duplicated.
func TestLinkImpairmentAccounting(t *testing.T) {
	loop := sim.NewLoop(11)
	cfg := Config{Delay: sim.Millisecond, Impair: chaosImpairments()}
	delivered := 0
	link := NewLink(loop, cfg, func(any, int) { delivered++ })
	for i := 0; i < 5000; i++ {
		loop.At(sim.Time(i)*10*sim.Microsecond, func() { link.Send(nil, 1000) })
	}
	loop.RunUntil(sim.Second)
	want := link.Sent - link.Dropped - link.Corrupted + link.Duplicated
	if delivered != want || link.Delivered != want {
		t.Fatalf("delivered %d (link says %d), want %d (sent %d dropped %d corrupted %d duplicated %d)",
			delivered, link.Delivered, want, link.Sent, link.Dropped, link.Corrupted, link.Duplicated)
	}
	if link.Corrupted == 0 || link.Duplicated == 0 || link.Dropped == 0 {
		t.Fatalf("impairments not exercised: %+v", *link)
	}
}

// TestMeanLoss pins the closed form against hand-computed points and the
// degenerate configurations.
func TestMeanLoss(t *testing.T) {
	cases := []struct {
		ge   GilbertElliott
		want float64
	}{
		{GilbertElliott{}, 0},              // disabled
		{GilbertElliott{LossGood: 0.5}, 0}, // disabled: LossGood never drawn
		{GilbertElliott{PEnterBad: 0.05, PExitBad: 0.5}, 0.05 / 0.55},
		{GilbertElliott{PEnterBad: 0.02, PExitBad: 0.3, LossBad: 0.8}, (0.02 / 0.32) * 0.8},
		{GilbertElliott{PEnterBad: 0.01, PExitBad: 0.24, LossGood: 0.01},
			(0.01/0.25)*1 + (0.24/0.25)*0.01},
		{GilbertElliott{PEnterBad: 0.1, PExitBad: 0, LossBad: 0.7}, 0.7}, // absorbed in bad
	}
	for i, c := range cases {
		got := c.ge.MeanLoss()
		if got < c.want-1e-12 || got > c.want+1e-12 {
			t.Errorf("case %d: MeanLoss() = %g, want %g", i, got, c.want)
		}
	}
}

func TestCorruptBytesFlipsBits(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	orig := make([]byte, 64)
	for i := range orig {
		orig[i] = byte(i)
	}
	buf := append([]byte(nil), orig...)
	CorruptBytes(buf, rng)
	diff := 0
	for i := range buf {
		if buf[i] != orig[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("CorruptBytes changed nothing")
	}
	CorruptBytes(nil, rng) // must not panic
}

// End-to-end smoke test of the live relay: payloads cross an unimpaired
// proxy intact, and Rebind changes the source address the server observes.
func TestUDPProxyRelayAndRebind(t *testing.T) {
	server, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	proxy, err := NewUDPProxy(ProxyConfig{Target: server.LocalAddr().String()})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	client, err := net.DialUDP("udp", nil, proxy.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	recv := func() (string, *net.UDPAddr) {
		buf := make([]byte, 256)
		server.SetReadDeadline(time.Now().Add(5 * time.Second))
		n, from, err := server.ReadFromUDP(buf)
		if err != nil {
			t.Fatalf("server read: %v", err)
		}
		return string(buf[:n]), from
	}

	if _, err := client.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	msg, from1 := recv()
	if msg != "hello" {
		t.Fatalf("server got %q, want %q", msg, "hello")
	}
	// Server→client direction.
	if _, err := server.WriteToUDP([]byte("world"), from1); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 256)
	client.SetReadDeadline(time.Now().Add(5 * time.Second))
	n, err := client.Read(buf)
	if err != nil || string(buf[:n]) != "world" {
		t.Fatalf("client got %q err %v, want %q", buf[:n], err, "world")
	}

	if err := proxy.Rebind(); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Write([]byte("after")); err != nil {
		t.Fatal(err)
	}
	msg, from2 := recv()
	if msg != "after" {
		t.Fatalf("server got %q after rebind, want %q", msg, "after")
	}
	if from2.Port == from1.Port && from2.IP.Equal(from1.IP) {
		t.Fatalf("rebind did not change the server-observed source address (%v)", from1)
	}
	if proxy.Rebinds() != 1 {
		t.Fatalf("Rebinds() = %d, want 1", proxy.Rebinds())
	}
	up, down := proxy.Stats()
	if up.Forwarded != 2 || down.Forwarded != 1 {
		t.Fatalf("unexpected proxy stats: up %+v down %+v", up, down)
	}
}
