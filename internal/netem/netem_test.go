package netem

import (
	"math"
	"testing"

	"github.com/tacktp/tack/internal/sim"
)

func TestPureDelayLine(t *testing.T) {
	loop := sim.NewLoop(1)
	var at sim.Time
	l := NewLink(loop, Config{Delay: 25 * sim.Millisecond}, func(p any, n int) { at = loop.Now() })
	l.Send("x", 1000)
	loop.Run()
	if at != 25*sim.Millisecond {
		t.Fatalf("delivered at %v, want 25ms", at)
	}
	if l.Delivered != 1 || l.Sent != 1 {
		t.Fatalf("counters: %+v", l)
	}
}

func TestSerializationDelay(t *testing.T) {
	loop := sim.NewLoop(1)
	var at sim.Time
	// 10 Mbit/s, 1250 B packet => 1 ms serialization, no propagation.
	l := NewLink(loop, Config{RateBps: 10e6}, func(p any, n int) { at = loop.Now() })
	l.Send("x", 1250)
	loop.Run()
	if at != sim.Millisecond {
		t.Fatalf("delivered at %v, want 1ms", at)
	}
}

func TestQueueingBackToBack(t *testing.T) {
	loop := sim.NewLoop(1)
	var times []sim.Time
	l := NewLink(loop, Config{RateBps: 10e6, Delay: 5 * sim.Millisecond},
		func(p any, n int) { times = append(times, loop.Now()) })
	for i := 0; i < 3; i++ {
		l.Send(i, 1250)
	}
	loop.Run()
	want := []sim.Time{6 * sim.Millisecond, 7 * sim.Millisecond, 8 * sim.Millisecond}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("delivery %d at %v, want %v", i, times[i], want[i])
		}
	}
}

func TestOrderPreserved(t *testing.T) {
	loop := sim.NewLoop(1)
	var got []int
	l := NewLink(loop, Config{RateBps: 100e6, Delay: sim.Millisecond},
		func(p any, n int) { got = append(got, p.(int)) })
	for i := 0; i < 50; i++ {
		l.Send(i, 100+i*7)
	}
	loop.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("reordered delivery: %v", got)
		}
	}
}

func TestDropTailOverflow(t *testing.T) {
	loop := sim.NewLoop(1)
	delivered := 0
	l := NewLink(loop, Config{RateBps: 1e6, QueueBytes: 3000}, func(p any, n int) { delivered++ })
	for i := 0; i < 10; i++ {
		l.Send(i, 1500)
	}
	loop.Run()
	if l.Overflows == 0 {
		t.Fatal("no overflow on a 2-packet queue")
	}
	if delivered+l.Overflows != 10 {
		t.Fatalf("delivered %d + overflowed %d != 10", delivered, l.Overflows)
	}
}

func TestBernoulliLoss(t *testing.T) {
	loop := sim.NewLoop(1)
	delivered := 0
	l := NewLink(loop, Config{Delay: sim.Microsecond, LossRate: 0.3}, func(p any, n int) { delivered++ })
	const n = 10000
	for i := 0; i < n; i++ {
		l.Send(i, 100)
	}
	loop.Run()
	lossFrac := float64(l.Dropped) / n
	if math.Abs(lossFrac-0.3) > 0.03 {
		t.Fatalf("loss fraction %.3f far from 0.3", lossFrac)
	}
	if delivered != n-l.Dropped {
		t.Fatalf("delivered %d, dropped %d, sent %d", delivered, l.Dropped, n)
	}
}

func TestSetLossRate(t *testing.T) {
	loop := sim.NewLoop(1)
	delivered := 0
	l := NewLink(loop, Config{Delay: sim.Microsecond}, func(p any, n int) { delivered++ })
	l.SetLossRate(1.0)
	for i := 0; i < 10; i++ {
		l.Send(i, 100)
	}
	loop.Run()
	if delivered != 0 || l.Dropped != 10 {
		t.Fatalf("delivered %d dropped %d with loss=1", delivered, l.Dropped)
	}
}

func TestDefaultQueueBytes(t *testing.T) {
	c := Config{RateBps: 100e6, Delay: 100 * sim.Millisecond}
	// bdp = 100e6/8 * 0.1 = 1.25 MB
	if got := c.DefaultQueueBytes(); got != 1250000 {
		t.Fatalf("DefaultQueueBytes = %d, want 1250000", got)
	}
	small := Config{RateBps: 1e6, Delay: sim.Millisecond}
	if got := small.DefaultQueueBytes(); got != 64*1024 {
		t.Fatalf("floor = %d, want 65536", got)
	}
	explicit := Config{QueueBytes: 777}
	if got := explicit.DefaultQueueBytes(); got != 777 {
		t.Fatalf("explicit = %d, want 777", got)
	}
}

func TestPipeDirections(t *testing.T) {
	loop := sim.NewLoop(1)
	var toA, toB []any
	p := NewPipe(loop,
		Config{Delay: sim.Millisecond},
		Config{Delay: 2 * sim.Millisecond},
		func(pl any, n int) { toB = append(toB, pl) },
		func(pl any, n int) { toA = append(toA, pl) })
	p.AtoB.Send("from-a", 100)
	p.BtoA.Send("from-b", 100)
	loop.Run()
	if len(toB) != 1 || toB[0] != "from-a" {
		t.Fatalf("B received %v", toB)
	}
	if len(toA) != 1 || toA[0] != "from-b" {
		t.Fatalf("A received %v", toA)
	}
}

func TestSymmetricHelper(t *testing.T) {
	fwd, rev := Symmetric(500e6, 100*sim.Millisecond, 0, 0.01, 0.02)
	if fwd.LossRate != 0.01 || rev.LossRate != 0.02 {
		t.Fatal("loss rates not applied per direction")
	}
	if fwd.RateBps != rev.RateBps || fwd.Delay != rev.Delay {
		t.Fatal("symmetric rate/delay mismatch")
	}
}

func TestThroughputMatchesRate(t *testing.T) {
	loop := sim.NewLoop(1)
	var rcvBytes int64
	cfg := Config{RateBps: 50e6, Delay: 10 * sim.Millisecond, QueueBytes: 1 << 20}
	l := NewLink(loop, cfg, func(p any, n int) { rcvBytes += int64(n) })
	// Offer 2x the link rate for 1 second.
	var feed func()
	feed = func() {
		l.Send(nil, 1500)
		l.Send(nil, 1500)
		if loop.Now() < sim.Second {
			loop.After(sim.Time(1500*8)*sim.Time(1e9/50e6)*sim.Nanosecond, feed)
		}
	}
	loop.After(0, feed)
	loop.RunUntil(sim.Second + 20*sim.Millisecond)
	mbps := float64(rcvBytes) * 8 / 1e6
	if mbps < 45 || mbps > 51 {
		t.Fatalf("achieved %.1f Mbit/s over a 50 Mbit/s link", mbps)
	}
}
