package core

import (
	"testing"
	"testing/quick"

	"github.com/tacktp/tack/internal/seqspace"
	"github.com/tacktp/tack/internal/sim"
)

func ms(n int64) sim.Time { return sim.Time(n) * sim.Millisecond }

func TestDefaultParams(t *testing.T) {
	p := DefaultParams()
	if p.Beta != 4 || p.L != 2 || p.Q != 1 || p.SettleFraction != 4 {
		t.Fatalf("defaults = %+v", p)
	}
	filled := (Params{}).withDefaults()
	if filled != p {
		t.Fatalf("withDefaults = %+v", filled)
	}
}

func TestLossTrackerInOrderNoGaps(t *testing.T) {
	lt := NewLossTracker()
	for i := uint64(0); i < 10; i++ {
		if _, gapped := lt.OnPacket(ms(int64(i)), i); gapped {
			t.Fatalf("in-order packet %d flagged a gap", i)
		}
	}
	if due := lt.DueLosses(ms(100), 0); len(due) != 0 {
		t.Fatalf("no losses expected, got %v", due)
	}
	if lg, ok := lt.Largest(); !ok || lg != 9 {
		t.Fatalf("Largest = %d,%v", lg, ok)
	}
}

func TestLossTrackerDetectsGap(t *testing.T) {
	lt := NewLossTracker()
	lt.OnPacket(ms(0), 0)
	lt.OnPacket(ms(1), 1)
	gap, gapped := lt.OnPacket(ms(2), 3) // 2 missing
	if !gapped || gap != (seqspace.Range{Lo: 2, Hi: 3}) {
		t.Fatalf("gap = %v,%v", gap, gapped)
	}
	due := lt.DueLosses(ms(10), ms(5))
	if len(due) != 1 || due[0] != (seqspace.Range{Lo: 2, Hi: 3}) {
		t.Fatalf("due = %v", due)
	}
	// Already reported: not due again.
	if due := lt.DueLosses(ms(20), ms(5)); len(due) != 0 {
		t.Fatalf("re-reported: %v", due)
	}
	if lt.TotalLost() != 1 {
		t.Fatalf("TotalLost = %d", lt.TotalLost())
	}
}

func TestLossTrackerSettleDelaySuppressesReordering(t *testing.T) {
	lt := NewLossTracker()
	lt.OnPacket(ms(0), 0)
	lt.OnPacket(ms(1), 2) // 1 appears missing...
	// ...but it is only reordered and arrives before the settle delay.
	lt.OnPacket(ms(2), 1)
	due := lt.DueLosses(ms(10), ms(5))
	if len(due) != 0 {
		t.Fatalf("reordered packet declared lost: %v", due)
	}
}

func TestLossTrackerNotDueBeforeSettle(t *testing.T) {
	lt := NewLossTracker()
	lt.OnPacket(ms(0), 0)
	lt.OnPacket(ms(1), 2)
	if due := lt.DueLosses(ms(2), ms(5)); len(due) != 0 {
		t.Fatalf("loss declared before settle delay: %v", due)
	}
	d, ok := lt.NextDue(ms(5))
	if !ok || d != ms(6) {
		t.Fatalf("NextDue = %v,%v want 6ms", d, ok)
	}
}

func TestLossTrackerFirstPacketGap(t *testing.T) {
	lt := NewLossTracker()
	gap, gapped := lt.OnPacket(ms(0), 3)
	if !gapped || gap != (seqspace.Range{Lo: 0, Hi: 3}) {
		t.Fatalf("initial gap = %v,%v", gap, gapped)
	}
}

func TestReportedMissingShrinksOnArrival(t *testing.T) {
	lt := NewLossTracker()
	lt.OnPacket(ms(0), 0)
	lt.OnPacket(ms(1), 5) // gap 1..4
	lt.DueLosses(ms(10), ms(1))
	if got := lt.ReportedMissing(); len(got) != 1 || got[0] != (seqspace.Range{Lo: 1, Hi: 5}) {
		t.Fatalf("ReportedMissing = %v", got)
	}
	// Retransmissions arrive as *new* pktseqs in TACK, but suppose the
	// holes 2,3 fill via pktseq 2,3 (e.g. late reordering).
	lt.OnPacket(ms(12), 2)
	lt.OnPacket(ms(13), 3)
	got := lt.ReportedMissing()
	want := []seqspace.Range{{Lo: 1, Hi: 2}, {Lo: 4, Hi: 5}}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("ReportedMissing = %v, want %v", got, want)
	}
}

func TestLossRateInterval(t *testing.T) {
	lt := NewLossTracker()
	// 10 expected (0..9), 2 dropped.
	for i := uint64(0); i < 10; i++ {
		if i == 3 || i == 7 {
			continue
		}
		lt.OnPacket(ms(int64(i)), i)
	}
	rho := lt.CloseInterval()
	if rho < 0.19 || rho > 0.21 {
		t.Fatalf("rho = %v, want 0.2", rho)
	}
	// Next interval clean.
	for i := uint64(10); i < 20; i++ {
		lt.OnPacket(ms(int64(i)), i)
	}
	if rho := lt.CloseInterval(); rho != 0 {
		t.Fatalf("clean interval rho = %v", rho)
	}
}

func TestCompactBoundsState(t *testing.T) {
	lt := NewLossTracker()
	for i := uint64(0); i < 1000; i += 2 {
		lt.OnPacket(ms(int64(i)), i)
	}
	lt.DueLosses(ms(5000), 0)
	lt.Compact(900)
	for _, r := range lt.AckedRanges() {
		if r.Lo < 900 {
			t.Fatalf("compact left range %v", r)
		}
	}
	for _, r := range lt.ReportedMissing() {
		if r.Lo < 900 {
			t.Fatalf("compact left reported %v", r)
		}
	}
}

func TestBlockBudgetThresholdLargeBDP(t *testing.T) {
	b := NewBlockBudget(Params{Q: 4})
	// Large bdp regime: threshold = Q·MSS/(ρ·bdp).
	bdp := 100 * MSS * 1.0
	th := b.RichThreshold(0.1, bdp)
	want := 4.0 * MSS / (0.1 * bdp)
	if th != want {
		t.Fatalf("threshold = %v, want %v", th, want)
	}
	if b.RichThreshold(0, bdp) != 1 {
		t.Fatal("loss-free data path should never require rich blocks")
	}
}

func TestBlockBudgetThresholdSmallBDP(t *testing.T) {
	b := NewBlockBudget(Params{Q: 4, L: 2, Beta: 4})
	// Small bdp regime: threshold = Q/(ρ·L); with Q=4, ρ=10%, L=2 → 20,
	// clamped to 1.
	th := b.RichThreshold(0.1, MSS)
	if th != 1 {
		t.Fatalf("threshold = %v, want clamped 1", th)
	}
}

func TestBlockBudgetBlocks(t *testing.T) {
	b := NewBlockBudget(Params{Q: 1})
	bdp := 1000 * MSS * 1.0
	// ρ=5%, ρ′=10%: need = 0.05*0.1*1000 = 5 blocks > Q.
	if got := b.Blocks(0.05, 0.10, bdp); got != 5 {
		t.Fatalf("Blocks = %d, want 5", got)
	}
	// Below threshold: stays at Q.
	if got := b.Blocks(0.05, 0.001, bdp); got != 1 {
		t.Fatalf("Blocks = %d, want Q=1", got)
	}
	// Clean data path: stays at Q.
	if got := b.Blocks(0, 0.5, bdp); got != 1 {
		t.Fatalf("Blocks = %d, want Q=1", got)
	}
}

// Property: Blocks is monotone in ρ′ and never below Q.
func TestQuickBlocksMonotone(t *testing.T) {
	b := NewBlockBudget(Params{Q: 2})
	f := func(rhoRaw, rp1Raw, rp2Raw uint16, bdpPkts uint16) bool {
		rho := float64(rhoRaw%1000) / 1000
		r1 := float64(rp1Raw%1000) / 1000
		r2 := float64(rp2Raw%1000) / 1000
		if r1 > r2 {
			r1, r2 = r2, r1
		}
		bdp := float64(bdpPkts%5000) * MSS
		b1 := b.Blocks(rho, r1, bdp)
		b2 := b.Blocks(rho, r2, bdp)
		return b1 >= 2 && b2 >= b1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAckBuilderPreference(t *testing.T) {
	acked := []seqspace.Range{{Lo: 1, Hi: 2}, {Lo: 4, Hi: 7}, {Lo: 10, Hi: 11}}
	unacked := []seqspace.Range{{Lo: 2, Hi: 4}, {Lo: 7, Hi: 10}}
	a, u := AckBuilder{}.Build(acked, unacked, 1, 1)
	// Acked prefers the largest serial; unacked prefers the smallest.
	if len(a) != 1 || a[0] != (seqspace.Range{Lo: 10, Hi: 11}) {
		t.Fatalf("acked = %v", a)
	}
	if len(u) != 1 || u[0] != (seqspace.Range{Lo: 2, Hi: 4}) {
		t.Fatalf("unacked = %v", u)
	}
	a, u = AckBuilder{}.Build(acked, unacked, 10, 10)
	if len(a) != 3 || len(u) != 2 {
		t.Fatalf("unbounded build dropped blocks: %v %v", a, u)
	}
}

func TestWindowMonitorZeroWindow(t *testing.T) {
	w := NewWindowMonitor(100000)
	if w.Check(50000) {
		t.Fatal("ordinary shrink should not trigger")
	}
	if !w.Check(0) {
		t.Fatal("zero window must trigger")
	}
	if w.Check(0) {
		t.Fatal("zero window must trigger only once")
	}
}

func TestWindowMonitorLargeRelease(t *testing.T) {
	w := NewWindowMonitor(100000)
	w.OnAckSent(10000)
	// Release of 26% of capacity: above the quarter threshold.
	if !w.Check(36001) {
		t.Fatal("large release must trigger")
	}
	// Small growth thereafter must not.
	if w.Check(37000) {
		t.Fatal("small release should not trigger")
	}
}

func TestAckLossEstimator(t *testing.T) {
	e := NewAckLossEstimator()
	if e.Rate() != 0 {
		t.Fatal("empty estimator rate should be 0")
	}
	// Receive acks 0..9 except 3 and 7.
	for i := uint64(0); i < 10; i++ {
		if i == 3 || i == 7 {
			continue
		}
		e.OnAck(i)
	}
	if got := e.Rate(); got != 0.2 {
		t.Fatalf("rho' = %v, want 0.2", got)
	}
	e.OnAck(3)
	e.OnAck(7)
	if got := e.Rate(); got != 0 {
		t.Fatalf("rho' after recovery = %v, want 0", got)
	}
}

// Property: with any arrival pattern and settle=0, every PKT.SEQ below the
// largest that never arrived ends up either reported missing or suspected;
// arrived ones never do.
func TestQuickLossTrackerCompleteness(t *testing.T) {
	f := func(seqsRaw []uint16) bool {
		lt := NewLossTracker()
		seen := map[uint64]bool{}
		var largest uint64
		now := sim.Time(0)
		for _, s := range seqsRaw {
			pkt := uint64(s % 256)
			now += ms(1)
			lt.OnPacket(now, pkt)
			seen[pkt] = true
			if pkt > largest {
				largest = pkt
			}
		}
		if len(seen) == 0 {
			return true
		}
		lt.DueLosses(now+ms(1000), 0)
		var missing seqspace.RangeSet
		for _, r := range lt.ReportedMissing() {
			missing.AddRange(r)
		}
		for v := uint64(0); v < largest; v++ {
			if seen[v] && missing.Contains(v) {
				return false // arrived but reported missing
			}
			if !seen[v] && !missing.Contains(v) {
				return false // lost but never reported
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
