// Package core implements the TACK acknowledgment mechanism — the paper's
// primary contribution (§4–5). It provides the receiver-side machinery that
// the transport engine composes:
//
//   - LossTracker: receiver-based loss detection over the PKT.SEQ space
//     with a reordering settle delay (§5.1, §7), driving loss-event IACKs
//     and remembering which losses were reported so TACKs can repeat them.
//   - BlockBudget: Appendix A's analysis of when a TACK must carry more
//     unacked blocks (Eq. 6/9) and how many more (ΔQ), as a function of the
//     data-path loss ρ, ACK-path loss ρ′, and the bdp regime.
//   - AckBuilder: assembles the acked/unacked lists for a TACK under an
//     MSS-bounded block budget, preferring the newest acked blocks and the
//     oldest unacked blocks (§5.1).
//   - WindowMonitor: decides when an abrupt receive-window change warrants
//     a window-update IACK (§5.3).
//   - AckLossEstimator: sender-side ρ′ estimation from ACK sequence gaps
//     (§5.4).
//
// The acknowledgment *timing* discipline lives in package ackpolicy; the
// wire format in package packet.
package core

import (
	"github.com/tacktp/tack/internal/seqspace"
	"github.com/tacktp/tack/internal/sim"
)

// MSS mirrors the full-sized packet assumption of the paper.
const MSS = 1500

// Params bundles the TACK mechanism constants.
type Params struct {
	// Beta is the periodic-ACK count per RTTmin (paper default 4).
	Beta int
	// L is the byte-counting packet threshold (paper default 2).
	L int
	// Q is the primary number of unacked blocks a TACK reports (the
	// "TACK-poor" configuration uses 1; rich configurations raise the
	// budget adaptively).
	Q int
	// SettleFraction divides RTTmin to obtain the IACK reordering settle
	// delay (paper §7 cites RTTmin/4; 4 is the default).
	SettleFraction int
}

// DefaultParams returns the paper's recommended configuration.
func DefaultParams() Params {
	return Params{Beta: 4, L: 2, Q: 1, SettleFraction: 4}
}

// withDefaults fills zero fields.
func (p Params) withDefaults() Params {
	d := DefaultParams()
	if p.Beta <= 0 {
		p.Beta = d.Beta
	}
	if p.L <= 0 {
		p.L = d.L
	}
	if p.Q <= 0 {
		p.Q = d.Q
	}
	if p.SettleFraction <= 0 {
		p.SettleFraction = d.SettleFraction
	}
	return p
}

// suspect is a PKT.SEQ gap awaiting its settle delay before being declared
// lost.
type suspect struct {
	r  seqspace.Range
	at sim.Time // when the gap was first observed
}

// LossTracker performs receiver-based loss detection in the packet-number
// space. Because every transmission (including retransmissions) carries a
// fresh, monotonically increasing PKT.SEQ, a gap below the largest received
// number can only mean loss or reordering — never ambiguity about which
// transmission arrived (§5.1).
type LossTracker struct {
	received seqspace.RangeSet // PKT.SEQs seen
	reported seqspace.RangeSet // PKT.SEQs reported lost via IACK
	// reportedAt timestamps each reported range so stale entries can be
	// pruned: a reported PKT.SEQ hole never fills when the sender repaired
	// it with a retransmission (which carries a fresh number), so holes are
	// dropped once they have been outstanding long enough for the repair
	// to have happened (a few RTTs; the sender's RTO backstops the rest).
	reportedAt []suspect
	suspects   []suspect
	largest    uint64
	have       bool

	// Interval accounting for the receiver-computed loss rate ρ.
	intervalBase     uint64 // largest at last interval close
	intervalReceived int
	totalLost        int
}

// NewLossTracker returns an empty tracker.
func NewLossTracker() *LossTracker { return &LossTracker{} }

// Largest returns the largest PKT.SEQ received (and whether any packet
// arrived yet).
func (lt *LossTracker) Largest() (uint64, bool) { return lt.largest, lt.have }

// OnPacket records the arrival of pktSeq at time now and returns any newly
// suspected gap (the PKT.SEQs skipped over), which starts its settle timer.
func (lt *LossTracker) OnPacket(now sim.Time, pktSeq uint64) (newGap seqspace.Range, gapped bool) {
	lt.intervalReceived++
	if !lt.have {
		lt.have = true
		lt.largest = pktSeq
		lt.received.AddValue(pktSeq)
		if pktSeq > 0 {
			g := seqspace.Range{Lo: 0, Hi: pktSeq}
			lt.suspects = append(lt.suspects, suspect{r: g, at: now})
			return g, true
		}
		return seqspace.Range{}, false
	}
	lt.received.AddValue(pktSeq)
	if pktSeq > lt.largest+1 {
		g := seqspace.Range{Lo: lt.largest + 1, Hi: pktSeq}
		lt.suspects = append(lt.suspects, suspect{r: g, at: now})
		lt.largest = pktSeq
		return g, true
	}
	if pktSeq > lt.largest {
		lt.largest = pktSeq
	}
	return seqspace.Range{}, false
}

// DueLoss is one settled loss range plus the time its gap was first
// observed, so callers can report the detection latency (observation →
// declaration) to the telemetry layer.
type DueLoss struct {
	Range seqspace.Range
	// Observed is when the gap first appeared (the settle timer's start).
	Observed sim.Time
}

// DueLosses returns the suspected ranges whose settle delay has elapsed and
// that are still missing; they are marked as reported (the IACK trigger).
// The caller sends one loss IACK covering the returned ranges.
func (lt *LossTracker) DueLosses(now sim.Time, settle sim.Time) []seqspace.Range {
	details := lt.DueLossDetails(now, settle)
	if len(details) == 0 {
		return nil
	}
	due := make([]seqspace.Range, len(details))
	for i, d := range details {
		due[i] = d.Range
	}
	return due
}

// DueLossDetails is DueLosses with the per-range observation time retained.
func (lt *LossTracker) DueLossDetails(now sim.Time, settle sim.Time) []DueLoss {
	var due []DueLoss
	kept := lt.suspects[:0]
	for _, s := range lt.suspects {
		if now-s.at < settle {
			kept = append(kept, s)
			continue
		}
		// Reduce the suspect range to what is still missing.
		for _, missing := range lt.received.Gaps(s.r.Lo, s.r.Hi) {
			due = append(due, DueLoss{Range: missing, Observed: s.at})
			lt.reported.AddRange(missing)
			lt.reportedAt = append(lt.reportedAt, suspect{r: missing, at: now})
			lt.totalLost += int(missing.Len())
		}
	}
	lt.suspects = kept
	return due
}

// PruneReported drops reported holes first flagged before cutoff. Call with
// cutoff = now − a few RTTs so TACKs stop repeating holes the sender has
// long since repaired under fresh packet numbers.
func (lt *LossTracker) PruneReported(cutoff sim.Time) {
	kept := lt.reportedAt[:0]
	for _, s := range lt.reportedAt {
		if s.at >= cutoff {
			kept = append(kept, s)
			continue
		}
		lt.reported.Remove(s.r.Lo, s.r.Hi)
	}
	lt.reportedAt = kept
}

// NextDue returns the earliest settle deadline among pending suspects
// (ok=false when none).
func (lt *LossTracker) NextDue(settle sim.Time) (sim.Time, bool) {
	var best sim.Time
	found := false
	for _, s := range lt.suspects {
		d := s.at + settle
		if !found || d < best {
			best = d
			found = true
		}
	}
	return best, found
}

// SuspectFrontier returns the lowest PKT.SEQ of any pending (unsettled)
// suspect; ok is false when no suspects are pending. Below the frontier,
// the reported set is authoritative: every missing PKT.SEQ has been
// declared lost.
func (lt *LossTracker) SuspectFrontier() (uint64, bool) {
	var best uint64
	found := false
	for _, s := range lt.suspects {
		if !found || s.r.Lo < best {
			best = s.r.Lo
			found = true
		}
	}
	return best, found
}

// ReportedMissing returns the PKT.SEQ ranges that were reported lost via
// IACK and have still not arrived — the pool TACKs draw their unacked list
// from (§5.1: "TACK only reports missing packets that have been reported
// by loss-event-driven IACKs").
func (lt *LossTracker) ReportedMissing() []seqspace.Range {
	var out []seqspace.Range
	for _, r := range lt.reported.Ranges() {
		out = append(out, lt.received.Gaps(r.Lo, r.Hi)...)
	}
	return out
}

// AckedRanges returns the received PKT.SEQ ranges (the acked list).
func (lt *LossTracker) AckedRanges() []seqspace.Range { return lt.received.Ranges() }

// Received reports whether pktSeq has arrived.
func (lt *LossTracker) Received(pktSeq uint64) bool { return lt.received.Contains(pktSeq) }

// CloseInterval ends a loss-rate measurement interval (aligned with TACK
// emission) and returns ρ for the interval in [0,1].
func (lt *LossTracker) CloseInterval() float64 {
	if !lt.have {
		return 0
	}
	expected := int(lt.largest - lt.intervalBase)
	if lt.intervalBase == 0 && lt.largest > 0 {
		expected++ // packet number 0 also expected in the first interval
	}
	rcv := lt.intervalReceived
	lt.intervalBase = lt.largest
	lt.intervalReceived = 0
	if expected <= 0 || rcv >= expected {
		return 0
	}
	return float64(expected-rcv) / float64(expected)
}

// Compact drops tracking state for PKT.SEQs below floor (all fully
// processed), bounding memory on long flows.
func (lt *LossTracker) Compact(floor uint64) {
	lt.received.RemoveBelow(floor)
	lt.reported.RemoveBelow(floor)
	kept := lt.suspects[:0]
	for _, s := range lt.suspects {
		if s.r.Hi > floor {
			if s.r.Lo < floor {
				s.r.Lo = floor
			}
			kept = append(kept, s)
		}
	}
	lt.suspects = kept
	keptRep := lt.reportedAt[:0]
	for _, s := range lt.reportedAt {
		if s.r.Hi > floor {
			keptRep = append(keptRep, s)
		}
	}
	lt.reportedAt = keptRep
}

// TotalLost returns the cumulative count of PKT.SEQs declared lost.
func (lt *LossTracker) TotalLost() int { return lt.totalLost }

// BlockBudget computes how many unacked blocks a TACK should carry
// (Appendix A). Inputs: the configured primary budget Q, measured loss
// rates ρ (data path) and ρ′ (ACK path), the bandwidth-delay product in
// bytes, and the L/β/MSS constants.
type BlockBudget struct {
	p Params
}

// NewBlockBudget returns a budget calculator for params p.
func NewBlockBudget(p Params) *BlockBudget { return &BlockBudget{p: p.withDefaults()} }

// largeBDP reports whether the flow is in the periodic-TACK regime
// (bdp ≥ β·L·MSS).
func (b *BlockBudget) largeBDP(bdpBytes float64) bool {
	return bdpBytes >= float64(b.p.Beta*b.p.L*MSS)
}

// RichThreshold returns the ACK-path loss rate ρ′ above which a TACK must
// carry more than the primary Q blocks (Eq. 6/9). An infinite threshold is
// returned as 1 (ρ′ can never exceed it) when the data path is loss-free.
func (b *BlockBudget) RichThreshold(rho, bdpBytes float64) float64 {
	if rho <= 0 {
		return 1
	}
	var th float64
	if b.largeBDP(bdpBytes) {
		th = float64(b.p.Q) * MSS / (rho * bdpBytes)
	} else {
		th = float64(b.p.Q) / (rho * float64(b.p.L))
	}
	if th > 1 {
		th = 1
	}
	return th
}

// Blocks returns the number of unacked blocks the next TACK should report:
// Q when ρ′ is at or below the threshold, Q+ΔQ above it (Appendix A's
// ΔQ = ρ·ρ′·bdp/MSS − Q in the large-bdp regime, ρ·ρ′·L − Q in the small).
func (b *BlockBudget) Blocks(rho, rhoPrime, bdpBytes float64) int {
	q := b.p.Q
	if rho <= 0 || rhoPrime <= b.RichThreshold(rho, bdpBytes) {
		return q
	}
	var need float64
	if b.largeBDP(bdpBytes) {
		need = rho * rhoPrime * bdpBytes / MSS
	} else {
		need = rho * rhoPrime * float64(b.p.L)
	}
	n := int(need + 0.999)
	if n < q {
		n = q
	}
	return n
}

// AckBuilder selects the block lists for a TACK under a budget.
type AckBuilder struct{}

// Build picks up to maxAcked acked blocks (preferring the largest packet
// numbers — the freshest information) and up to maxUnacked unacked blocks
// (preferring the smallest — the oldest outstanding losses), per §5.1.
func (AckBuilder) Build(acked, unacked []seqspace.Range, maxAcked, maxUnacked int) (a, u []seqspace.Range) {
	if n := len(acked); n > maxAcked {
		acked = acked[n-maxAcked:]
	}
	if len(unacked) > maxUnacked {
		unacked = unacked[:maxUnacked]
	}
	a = append(a, acked...)
	u = append(u, unacked...)
	return a, u
}

// WindowMonitor triggers window-update IACKs on abrupt receive-window
// changes (§4.4 item 2, §5.3): a zero window must be announced at once, and
// so must the release of a large volume of buffered data (more than a
// quarter of capacity by default).
type WindowMonitor struct {
	capacity     int
	lastAnnounce uint64
	// ReleaseFraction of capacity that counts as a "large volume" release.
	releaseNum, releaseDen int
}

// NewWindowMonitor returns a monitor for a receive buffer of the given
// capacity in bytes.
func NewWindowMonitor(capacity int) *WindowMonitor {
	return &WindowMonitor{capacity: capacity, lastAnnounce: uint64(capacity), releaseNum: 1, releaseDen: 4}
}

// Check inspects the current advertised window and reports whether an
// immediate IACK is warranted. It records the announcement when it fires.
func (w *WindowMonitor) Check(window uint64) bool {
	if window == 0 && w.lastAnnounce != 0 {
		w.lastAnnounce = 0
		return true
	}
	released := int64(window) - int64(w.lastAnnounce)
	if released > int64(w.capacity)*int64(w.releaseNum)/int64(w.releaseDen) {
		w.lastAnnounce = window
		return true
	}
	return false
}

// OnAckSent records that window was announced through a regular TACK, so
// only future *abrupt* changes trigger IACKs.
func (w *WindowMonitor) OnAckSent(window uint64) { w.lastAnnounce = window }

// AckLossEstimator measures the ACK-path loss rate ρ′ at the sender from
// gaps in the ACK sequence numbers carried by TACKs/IACKs (§5.4).
type AckLossEstimator struct {
	largest  uint64
	received int
	have     bool
}

// NewAckLossEstimator returns an empty estimator.
func NewAckLossEstimator() *AckLossEstimator { return &AckLossEstimator{} }

// OnAck records an arriving acknowledgment's sequence number.
func (e *AckLossEstimator) OnAck(ackSeq uint64) {
	e.received++
	if !e.have || ackSeq > e.largest {
		e.largest = ackSeq
		e.have = true
	}
}

// Rate returns the estimated ρ′ in [0,1].
func (e *AckLossEstimator) Rate() float64 {
	if !e.have {
		return 0
	}
	expected := int(e.largest) + 1
	if e.received >= expected {
		return 0
	}
	return float64(expected-e.received) / float64(expected)
}
