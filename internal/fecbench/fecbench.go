// Package fecbench measures what forward error correction buys a
// deadline-driven video stream that ARQ alone cannot: recovery without
// the feedback loop.
//
// The workload is the paper's Figure-11 projection scenario re-run over
// an emulated WAN with Gilbert–Elliott burst loss: a constant-frame-rate
// video source writes each encoded frame onto one multiplexed stream,
// and a playout model renders frame i at its deadline — complete frames
// render clean, incomplete ones render corrupted (macroblocking). With
// a ~50 ms RTT and a ~100 ms render budget, a lost packet recovered by
// retransmission costs at least loss-detection time plus a round trip
// and blows the deadline; a packet recovered from a repair symbol
// already in flight costs nothing. The A/B arms differ only in
// StreamOptions.FEC, so the event delta is attributable to the repair
// path alone.
package fecbench

import (
	"fmt"

	"github.com/tacktp/tack/internal/fec"
	"github.com/tacktp/tack/internal/netem"
	"github.com/tacktp/tack/internal/sim"
	"github.com/tacktp/tack/internal/stream"
	"github.com/tacktp/tack/internal/topo"
	"github.com/tacktp/tack/internal/transport"
	"github.com/tacktp/tack/internal/video"
)

// Config parameterizes one run. The zero value of any field selects the
// default noted on it.
type Config struct {
	// BitrateBps is the video source's average bit rate (default 8 Mbit/s).
	BitrateBps float64
	// FPS is the source frame rate (default 60).
	FPS int
	// DeadlineFrames is the render budget in frame periods: frame i must be
	// fully delivered within this many frame intervals of its encode time
	// or it renders corrupted (default 6 ≈ 100 ms at 60 fps).
	DeadlineFrames int
	// RateBps is the WAN bottleneck rate (default 20 Mbit/s).
	RateBps float64
	// OWD is the WAN one-way propagation delay (default 25 ms).
	OWD sim.Time
	// QueueBytes is the bottleneck queue depth (default 1 MiB: deep enough
	// that the only losses are the configured burst-loss model's).
	QueueBytes int
	// Burst is the Gilbert–Elliott burst-loss model on the data direction
	// (default enter 0.03 / exit 0.5 ≈ 5.7% mean loss in 2-packet bursts,
	// the paper's 5–10% regime).
	Burst netem.GilbertElliott
	// FEC opts the video stream into forward error correction; nil runs
	// the ARQ-only baseline arm.
	FEC *fec.Options
	// Duration is the simulated session length (default 30 s).
	Duration sim.Time
	// Seed seeds the simulation (default 1).
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.BitrateBps == 0 {
		c.BitrateBps = 8e6
	}
	if c.FPS == 0 {
		c.FPS = 60
	}
	if c.DeadlineFrames == 0 {
		c.DeadlineFrames = 6
	}
	if c.RateBps == 0 {
		c.RateBps = 20e6
	}
	if c.OWD == 0 {
		c.OWD = 25 * sim.Millisecond
	}
	if c.QueueBytes == 0 {
		c.QueueBytes = 1 << 20
	}
	if c.Burst == (netem.GilbertElliott{}) {
		c.Burst = netem.GilbertElliott{PEnterBad: 0.03, PExitBad: 0.5}
	}
	if c.Duration == 0 {
		c.Duration = 30 * sim.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Result reports one run's playout and transport accounting.
type Result struct {
	// Frames is the number of frames the source encoded.
	Frames int
	// LateFrames counts frames rendered corrupted: not fully delivered by
	// their render deadline (the macroblocking events of Figure 11).
	LateFrames int
	// Stalls and RebufferRatio are the playout model's rebuffering
	// accounting.
	Stalls        int
	RebufferRatio float64
	// Events is the headline quality metric: LateFrames + Stalls.
	Events int
	// DataBytes and RepairBytes are the sender's payload and repair wire
	// bytes; Overhead is RepairBytes over their sum.
	DataBytes   int64
	RepairBytes int64
	Overhead    float64
	// Recovered counts receiver-side FEC reconstructions; RepairsSent the
	// sender's emitted repair packets.
	Recovered   int
	RepairsSent int
	// Retransmits counts transport retransmissions (the ARQ path).
	Retransmits int
	// LinkDropped counts packets the impaired link actually destroyed.
	LinkDropped int
	// MeanLoss is the analytic stationary loss rate of the burst model.
	MeanLoss float64
}

// Run executes one simulated video session and reports its accounting.
func Run(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	loop := sim.NewLoop(cfg.Seed)

	scfg := stream.Default()
	scfg.RecvWindow = 512 << 10
	scfg.MaxStreams = 4
	// Absorb I-frame bursts; the congestion controller does the pacing.
	scfg.SendBuffer = 2 << 20

	tcfg := transport.Config{Mode: transport.ModeTACK, Streams: &scfg}
	path, fwd, _ := topo.WANPath(loop, topo.WANConfig{
		RateBps: cfg.RateBps, OWD: cfg.OWD, QueueBytes: cfg.QueueBytes,
		Impair: netem.Impairments{GE: cfg.Burst},
	})
	flow, err := topo.NewFlow(loop, tcfg, path)
	if err != nil {
		return Result{}, err
	}

	var opts stream.Options
	if cfg.FEC != nil {
		opts.FEC = *cfg.FEC
		if err := opts.Validate(); err != nil {
			return Result{}, fmt.Errorf("fec options: %w", err)
		}
	}
	ss, err := flow.Sender.Streams().Open(opts)
	if err != nil {
		return Result{}, err
	}

	src := &video.Source{FPS: cfg.FPS, AvgBitrate: cfg.BitrateBps, PeakFactor: 2, GOPSize: 30}
	playout := video.NewPlayout(cfg.FPS, 2)
	frameDur := src.Interval()
	deadline := sim.Time(cfg.DeadlineFrames) * frameDur

	// frameEnds[i] is the stream offset at which frame i completes;
	// frameDue[i] its render deadline.
	var frameEnds []uint64
	var frameDue []sim.Time
	var total uint64
	buf := make([]byte, 0, 64<<10)
	var tick func()
	tick = func() {
		now := loop.Now()
		n := src.NextFrameBytes()
		if room := scfg.SendBuffer - ss.BufferedBytes(); n > room {
			// A real-time encoder never blocks: a frame the transport
			// cannot absorb is dropped at the source and renders corrupted.
			frameEnds = append(frameEnds, total)
			frameDue = append(frameDue, now) // already missed
		} else {
			if cap(buf) < n {
				buf = make([]byte, n)
			}
			b := buf[:n]
			streamFill(ss.ID(), total, b)
			if _, err := ss.Write(b); err != nil {
				return
			}
			total += uint64(n)
			frameEnds = append(frameEnds, total)
			frameDue = append(frameDue, now+deadline)
		}
		playout.Tick(now)
		loop.After(frameDur, tick)
	}
	loop.After(0, tick)

	// Receiver application: drain deliverable bytes every millisecond and
	// render frames in order — at completion if on time, corrupted at the
	// deadline otherwise.
	var delivered uint64
	late := 0
	next := 0
	scratch := make([]byte, 64<<10)
	var rs *stream.RecvStream
	var poll *sim.Timer
	poll = sim.NewTimer(loop, func() {
		if rs == nil {
			rs = flow.Receiver.Streams().TryAccept()
		}
		if rs != nil {
			for {
				n, eof, err := rs.ReadAvailable(scratch)
				delivered += uint64(n)
				if err != nil || eof || n == 0 {
					break
				}
			}
		}
		now := loop.Now()
	render:
		for next < len(frameEnds) {
			switch {
			case delivered >= frameEnds[next] && now <= frameDue[next]:
				playout.OnFrame(now, false)
			case now > frameDue[next]:
				playout.OnFrame(frameDue[next], true)
				late++
			default:
				break render
			}
			next++
		}
		poll.Reset(now + sim.Millisecond)
	})
	poll.Reset(sim.Millisecond)

	flow.Start()
	loop.RunUntil(cfg.Duration)
	playout.Finish(cfg.Duration)

	snd, rcv := flow.Sender.Stats, flow.Receiver.Stats
	res := Result{
		Frames:        len(frameEnds),
		LateFrames:    late,
		Stalls:        playout.Stalls,
		RebufferRatio: playout.RebufferRatio(cfg.Duration),
		Events:        late + playout.Stalls,
		DataBytes:     snd.DataBytes,
		RepairBytes:   snd.FECRepairBytes,
		Recovered:     rcv.FECRecovered,
		RepairsSent:   snd.FECRepairsSent,
		Retransmits:   snd.Retransmits,
		LinkDropped:   fwd.Dropped,
		MeanLoss:      cfg.Burst.MeanLoss(),
	}
	if sum := res.DataBytes + res.RepairBytes; sum > 0 {
		res.Overhead = float64(res.RepairBytes) / float64(sum)
	}
	return res, nil
}

// streamFill writes the stream's deterministic byte pattern so delivery
// can be spot-checked.
func streamFill(id uint32, off uint64, b []byte) {
	for i := range b {
		b[i] = byte(uint64(id)*131 + (off+uint64(i))*2654435761)
	}
}
