package fecbench

import (
	"testing"

	"github.com/tacktp/tack/internal/fec"
)

// The A/B delta the benchmark gate relies on: over burst loss the FEC arm
// must cut deadline-miss events materially while staying under the byte
// overhead cap.
func TestFECArmBeatsARQ(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var arqEvents, fecEvents int
	var data, repair int64
	for seed := int64(1); seed <= 3; seed++ {
		arq, err := Run(Config{Seed: seed})
		if err != nil {
			t.Fatalf("arq seed %d: %v", seed, err)
		}
		f, err := Run(Config{Seed: seed, FEC: &fec.Options{
			Scheme: fec.SchemeRS, GroupLen: 12, MaxOverhead: 0.18, Adaptive: true,
		}})
		if err != nil {
			t.Fatalf("fec seed %d: %v", seed, err)
		}
		t.Logf("seed %d ARQ: frames=%d late=%d stalls=%d retx=%d dropped=%d",
			seed, arq.Frames, arq.LateFrames, arq.Stalls, arq.Retransmits, arq.LinkDropped)
		t.Logf("seed %d FEC: frames=%d late=%d stalls=%d retx=%d dropped=%d recovered=%d repairs=%d overhead=%.3f",
			seed, f.Frames, f.LateFrames, f.Stalls, f.Retransmits, f.LinkDropped,
			f.Recovered, f.RepairsSent, f.Overhead)
		if f.Recovered == 0 {
			t.Errorf("seed %d: FEC arm recovered nothing", seed)
		}
		arqEvents += arq.Events
		fecEvents += f.Events
		data += f.DataBytes
		repair += f.RepairBytes
	}
	if arqEvents == 0 {
		t.Fatal("ARQ arm saw no deadline misses: the scenario is not stressing recovery latency")
	}
	reduction := 1 - float64(fecEvents)/float64(arqEvents)
	overhead := float64(repair) / float64(data+repair)
	t.Logf("pooled: arq=%d fec=%d reduction=%.2f overhead=%.3f", arqEvents, fecEvents, reduction, overhead)
	if reduction < 0.30 {
		t.Errorf("event reduction %.2f < 0.30 (arq %d, fec %d)", reduction, arqEvents, fecEvents)
	}
	if overhead >= 0.20 {
		t.Errorf("byte overhead %.3f >= 0.20", overhead)
	}
}
