// Package seqspace implements sequence-number interval sets.
//
// TACK feedback (paper §5.1) is built on two lists over the PKT.SEQ space:
// the "acked list" (blocks of contiguous packets received and queued at the
// receiver) and the "unacked list" (the gaps between them). RangeSet is the
// underlying ordered interval set, shared by the receiver's reassembly
// tracking, the TACK encoder, and the sender's retransmission bookkeeping.
package seqspace

import (
	"fmt"
	"sort"
	"strings"
)

// Range is the half-open interval [Lo, Hi) of sequence numbers.
type Range struct {
	Lo, Hi uint64
}

// Len returns the number of values covered.
func (r Range) Len() uint64 {
	if r.Hi <= r.Lo {
		return 0
	}
	return r.Hi - r.Lo
}

// Empty reports whether the range covers nothing.
func (r Range) Empty() bool { return r.Hi <= r.Lo }

// Contains reports whether v lies in [Lo, Hi).
func (r Range) Contains(v uint64) bool { return v >= r.Lo && v < r.Hi }

// Overlaps reports whether r and o share any value.
func (r Range) Overlaps(o Range) bool { return r.Lo < o.Hi && o.Lo < r.Hi }

// String renders [lo,hi).
func (r Range) String() string { return fmt.Sprintf("[%d,%d)", r.Lo, r.Hi) }

// RangeSet is an ordered set of disjoint, non-adjacent ranges. The zero
// value is an empty, ready-to-use set.
type RangeSet struct {
	// ranges are sorted by Lo; invariant: ranges[i].Hi < ranges[i+1].Lo
	// (strictly, because adjacent ranges are merged).
	ranges []Range
}

// Add inserts [lo, hi) into the set, merging overlapping or adjacent ranges.
// Empty input is a no-op.
func (s *RangeSet) Add(lo, hi uint64) {
	if hi <= lo {
		return
	}
	// Find the first range whose Hi >= lo (candidate for merging).
	i := sort.Search(len(s.ranges), func(i int) bool { return s.ranges[i].Hi >= lo })
	j := i
	nlo, nhi := lo, hi
	for j < len(s.ranges) && s.ranges[j].Lo <= hi {
		if s.ranges[j].Lo < nlo {
			nlo = s.ranges[j].Lo
		}
		if s.ranges[j].Hi > nhi {
			nhi = s.ranges[j].Hi
		}
		j++
	}
	if i == j {
		s.ranges = append(s.ranges, Range{})
		copy(s.ranges[i+1:], s.ranges[i:])
		s.ranges[i] = Range{Lo: nlo, Hi: nhi}
		return
	}
	s.ranges[i] = Range{Lo: nlo, Hi: nhi}
	s.ranges = append(s.ranges[:i+1], s.ranges[j:]...)
}

// AddValue inserts the single value v.
func (s *RangeSet) AddValue(v uint64) { s.Add(v, v+1) }

// AddRange inserts r.
func (s *RangeSet) AddRange(r Range) { s.Add(r.Lo, r.Hi) }

// Remove deletes [lo, hi) from the set, splitting ranges as needed. The
// operation is in place: the common transport case (consuming a prefix of
// the first range) allocates nothing.
func (s *RangeSet) Remove(lo, hi uint64) {
	if hi <= lo || len(s.ranges) == 0 {
		return
	}
	n := len(s.ranges)
	// First range intersecting [lo, hi).
	i := sort.Search(n, func(i int) bool { return s.ranges[i].Hi > lo })
	if i == n || s.ranges[i].Lo >= hi {
		return
	}
	// j is one past the last intersecting range.
	j := i
	for j < n && s.ranges[j].Lo < hi {
		j++
	}
	var head, tail Range
	hasHead := s.ranges[i].Lo < lo
	hasTail := s.ranges[j-1].Hi > hi
	if hasHead {
		head = Range{Lo: s.ranges[i].Lo, Hi: lo}
	}
	if hasTail {
		tail = Range{Lo: hi, Hi: s.ranges[j-1].Hi}
	}
	if i+1 == j && hasHead && hasTail {
		// Split inside one range: one insertion.
		s.ranges[i] = head
		s.ranges = append(s.ranges, Range{})
		copy(s.ranges[i+2:], s.ranges[i+1:])
		s.ranges[i+1] = tail
		return
	}
	out := s.ranges[:i]
	if hasHead {
		out = append(out, head)
	}
	if hasTail {
		out = append(out, tail)
	}
	out = append(out, s.ranges[j:]...)
	s.ranges = out
}

// RemoveBelow deletes every value < cut. Used to discard fully-acknowledged
// prefix state.
func (s *RangeSet) RemoveBelow(cut uint64) {
	if cut == 0 {
		return
	}
	s.Remove(0, cut)
}

// Contains reports whether v is in the set.
func (s *RangeSet) Contains(v uint64) bool {
	i := sort.Search(len(s.ranges), func(i int) bool { return s.ranges[i].Hi > v })
	return i < len(s.ranges) && s.ranges[i].Contains(v)
}

// ContainsRange reports whether all of [lo, hi) is in the set.
func (s *RangeSet) ContainsRange(lo, hi uint64) bool {
	if hi <= lo {
		return true
	}
	i := sort.Search(len(s.ranges), func(i int) bool { return s.ranges[i].Hi > lo })
	return i < len(s.ranges) && s.ranges[i].Lo <= lo && s.ranges[i].Hi >= hi
}

// Count returns the total number of values covered.
func (s *RangeSet) Count() uint64 {
	var n uint64
	for _, r := range s.ranges {
		n += r.Len()
	}
	return n
}

// NumRanges returns the number of disjoint ranges.
func (s *RangeSet) NumRanges() int { return len(s.ranges) }

// Ranges returns a copy of the ranges in ascending order.
func (s *RangeSet) Ranges() []Range {
	out := make([]Range, len(s.ranges))
	copy(out, s.ranges)
	return out
}

// View returns the internal range slice without copying. The result is
// read-only and valid only until the next mutation of the set; use it in
// hot paths that inspect ranges within a single call frame.
func (s *RangeSet) View() []Range { return s.ranges }

// Min returns the smallest value in the set; ok is false when empty.
func (s *RangeSet) Min() (v uint64, ok bool) {
	if len(s.ranges) == 0 {
		return 0, false
	}
	return s.ranges[0].Lo, true
}

// Max returns the largest value in the set; ok is false when empty.
func (s *RangeSet) Max() (v uint64, ok bool) {
	if len(s.ranges) == 0 {
		return 0, false
	}
	return s.ranges[len(s.ranges)-1].Hi - 1, true
}

// Empty reports whether the set covers nothing.
func (s *RangeSet) Empty() bool { return len(s.ranges) == 0 }

// ContiguousFrom returns the end of the contiguous run starting at base:
// the smallest value >= base not in the set. If base itself is missing it
// returns base.
func (s *RangeSet) ContiguousFrom(base uint64) uint64 {
	i := sort.Search(len(s.ranges), func(i int) bool { return s.ranges[i].Hi > base })
	if i < len(s.ranges) && s.ranges[i].Lo <= base {
		return s.ranges[i].Hi
	}
	return base
}

// Gaps returns the maximal ranges absent from the set between from and to
// (half-open), in ascending order. This is the receiver's "unacked list"
// over [smallest-missing, largest-received+1).
func (s *RangeSet) Gaps(from, to uint64) []Range {
	var out []Range
	cur := from
	for _, r := range s.ranges {
		if r.Hi <= from {
			continue
		}
		if r.Lo >= to {
			break
		}
		if r.Lo > cur {
			out = append(out, Range{Lo: cur, Hi: minU64(r.Lo, to)})
		}
		if r.Hi > cur {
			cur = r.Hi
		}
		if cur >= to {
			return out
		}
	}
	if cur < to {
		out = append(out, Range{Lo: cur, Hi: to})
	}
	return out
}

// Clone returns a deep copy.
func (s *RangeSet) Clone() *RangeSet {
	c := &RangeSet{ranges: make([]Range, len(s.ranges))}
	copy(c.ranges, s.ranges)
	return c
}

// String renders the set like {[0,3) [5,9)}.
func (s *RangeSet) String() string {
	parts := make([]string, len(s.ranges))
	for i, r := range s.ranges {
		parts[i] = r.String()
	}
	return "{" + strings.Join(parts, " ") + "}"
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
