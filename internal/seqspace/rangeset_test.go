package seqspace

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRangeBasics(t *testing.T) {
	r := Range{Lo: 2, Hi: 5}
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	if r.Empty() {
		t.Fatal("non-empty range reported empty")
	}
	if !r.Contains(2) || !r.Contains(4) || r.Contains(5) || r.Contains(1) {
		t.Fatal("Contains boundary behaviour wrong")
	}
	if !r.Overlaps(Range{Lo: 4, Hi: 9}) || r.Overlaps(Range{Lo: 5, Hi: 9}) {
		t.Fatal("Overlaps boundary behaviour wrong")
	}
	if (Range{Lo: 5, Hi: 5}).Len() != 0 {
		t.Fatal("empty range Len should be 0")
	}
}

func TestAddMergesAdjacent(t *testing.T) {
	var s RangeSet
	s.Add(0, 3)
	s.Add(3, 6) // adjacent: must merge
	if s.NumRanges() != 1 {
		t.Fatalf("adjacent add left %d ranges: %v", s.NumRanges(), s.String())
	}
	if !s.ContainsRange(0, 6) {
		t.Fatal("merged range incomplete")
	}
}

func TestAddMergesOverlappingChain(t *testing.T) {
	var s RangeSet
	s.Add(0, 2)
	s.Add(4, 6)
	s.Add(8, 10)
	s.Add(1, 9) // spans all three
	if s.NumRanges() != 1 || !s.ContainsRange(0, 10) {
		t.Fatalf("chain merge failed: %v", s.String())
	}
}

func TestAddOutOfOrder(t *testing.T) {
	var s RangeSet
	s.AddValue(5)
	s.AddValue(1)
	s.AddValue(3)
	if s.Count() != 3 || s.NumRanges() != 3 {
		t.Fatalf("set = %v", s.String())
	}
	s.AddValue(2)
	if s.NumRanges() != 2 {
		t.Fatalf("after filling 2: %v", s.String())
	}
	s.AddValue(4)
	if s.NumRanges() != 1 || !s.ContainsRange(1, 6) {
		t.Fatalf("after filling 4: %v", s.String())
	}
}

func TestRemoveSplits(t *testing.T) {
	var s RangeSet
	s.Add(0, 10)
	s.Remove(3, 7)
	if s.Contains(3) || s.Contains(6) || !s.Contains(2) || !s.Contains(7) {
		t.Fatalf("after remove: %v", s.String())
	}
	if s.NumRanges() != 2 || s.Count() != 6 {
		t.Fatalf("after remove: %v count=%d", s.String(), s.Count())
	}
}

func TestRemoveBelow(t *testing.T) {
	var s RangeSet
	s.Add(0, 5)
	s.Add(8, 12)
	s.RemoveBelow(9)
	if s.Count() != 3 || !s.ContainsRange(9, 12) {
		t.Fatalf("after RemoveBelow: %v", s.String())
	}
}

func TestMinMax(t *testing.T) {
	var s RangeSet
	if _, ok := s.Min(); ok {
		t.Fatal("empty Min should not be ok")
	}
	if _, ok := s.Max(); ok {
		t.Fatal("empty Max should not be ok")
	}
	s.Add(4, 7)
	s.Add(10, 12)
	if v, _ := s.Min(); v != 4 {
		t.Fatalf("Min = %d, want 4", v)
	}
	if v, _ := s.Max(); v != 11 {
		t.Fatalf("Max = %d, want 11", v)
	}
}

func TestContiguousFrom(t *testing.T) {
	var s RangeSet
	s.Add(0, 4)
	s.Add(6, 9)
	if got := s.ContiguousFrom(0); got != 4 {
		t.Fatalf("ContiguousFrom(0) = %d, want 4", got)
	}
	if got := s.ContiguousFrom(4); got != 4 {
		t.Fatalf("ContiguousFrom(4) = %d, want 4 (missing)", got)
	}
	if got := s.ContiguousFrom(6); got != 9 {
		t.Fatalf("ContiguousFrom(6) = %d, want 9", got)
	}
}

func TestGaps(t *testing.T) {
	var s RangeSet
	// Received 1, 4..6, 10 (paper §5.1 example): acked {1},{4,6},{10},
	// unacked gaps over [1,11) are {2,3} and {7,9}.
	s.AddValue(1)
	s.Add(4, 7)
	s.AddValue(10)
	gaps := s.Gaps(1, 11)
	want := []Range{{Lo: 2, Hi: 4}, {Lo: 7, Hi: 10}}
	if len(gaps) != len(want) {
		t.Fatalf("gaps = %v, want %v", gaps, want)
	}
	for i := range want {
		if gaps[i] != want[i] {
			t.Fatalf("gaps = %v, want %v", gaps, want)
		}
	}
}

func TestGapsEdges(t *testing.T) {
	var s RangeSet
	if gaps := s.Gaps(0, 5); len(gaps) != 1 || gaps[0] != (Range{Lo: 0, Hi: 5}) {
		t.Fatalf("empty-set gaps = %v", gaps)
	}
	s.Add(0, 5)
	if gaps := s.Gaps(0, 5); len(gaps) != 0 {
		t.Fatalf("full-set gaps = %v", gaps)
	}
	if gaps := s.Gaps(3, 3); len(gaps) != 0 {
		t.Fatalf("empty-window gaps = %v", gaps)
	}
}

func TestClone(t *testing.T) {
	var s RangeSet
	s.Add(0, 5)
	c := s.Clone()
	c.Add(10, 20)
	if s.Contains(15) {
		t.Fatal("clone mutation leaked into original")
	}
}

// reference is a brute-force model of RangeSet over a small universe.
type reference map[uint64]bool

func (m reference) add(lo, hi uint64) {
	for v := lo; v < hi; v++ {
		m[v] = true
	}
}
func (m reference) remove(lo, hi uint64) {
	for v := lo; v < hi; v++ {
		delete(m, v)
	}
}

// op is a randomized add/remove over a bounded universe for model checking.
type op struct {
	Remove bool
	Lo     uint16
	Len    uint8
}

// TestQuickRangeSetMatchesModel checks RangeSet against a map-based model:
// membership, count, and structural invariants (sorted, disjoint,
// non-adjacent).
func TestQuickRangeSetMatchesModel(t *testing.T) {
	f := func(ops []op) bool {
		var s RangeSet
		m := reference{}
		for _, o := range ops {
			lo := uint64(o.Lo % 512)
			hi := lo + uint64(o.Len%32)
			if o.Remove {
				s.Remove(lo, hi)
				m.remove(lo, hi)
			} else {
				s.Add(lo, hi)
				m.add(lo, hi)
			}
		}
		if s.Count() != uint64(len(m)) {
			return false
		}
		for v := uint64(0); v < 600; v++ {
			if s.Contains(v) != m[v] {
				return false
			}
		}
		rs := s.Ranges()
		for i, r := range rs {
			if r.Empty() {
				return false
			}
			if i > 0 && rs[i-1].Hi >= r.Lo { // must be disjoint AND non-adjacent
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickGapsComplement checks that Gaps is exactly the complement of the
// set within the probed window.
func TestQuickGapsComplement(t *testing.T) {
	f := func(ops []op, fromRaw, toRaw uint16) bool {
		var s RangeSet
		for _, o := range ops {
			lo := uint64(o.Lo % 512)
			s.Add(lo, lo+uint64(o.Len%32))
		}
		from, to := uint64(fromRaw%600), uint64(toRaw%600)
		if from > to {
			from, to = to, from
		}
		gaps := s.Gaps(from, to)
		var g RangeSet
		for _, r := range gaps {
			g.AddRange(r)
		}
		for v := from; v < to; v++ {
			if s.Contains(v) == g.Contains(v) {
				return false // must be exact complements inside the window
			}
		}
		// Gaps must not leak outside the window.
		if gmin, ok := g.Min(); ok && gmin < from {
			return false
		}
		if gmax, ok := g.Max(); ok && gmax >= to {
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(12))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRangeSetAddSequential(b *testing.B) {
	var s RangeSet
	for i := 0; i < b.N; i++ {
		s.Add(uint64(i)*2, uint64(i)*2+1)
		if s.NumRanges() > 4096 {
			s = RangeSet{}
		}
	}
}
